// Package load is the scenario-driven workload generator behind
// cmd/bbload. It drives a Target — either the in-process dispatch core
// or a remote bbserved over HTTP — in two classical modes:
//
//   - Open loop: arrivals are a Poisson process at a configured rate,
//     independent of how fast the target responds (the honest way to
//     measure latency under load), and every placed ball departs after
//     an exponential or lognormal service time — the continuous-time
//     "supermarket model" regime of Luczak–McDiarmid, where the
//     adaptive protocol's live-count rule is exercised by genuine
//     churn rather than a fixed horizon.
//
//   - Closed loop: a fixed number of workers issue place+remove cycles
//     back to back, measuring the target's saturation throughput.
//
// Scenarios shape the arrival process over the run: steady churn, a
// linear ramp, a flash crowd (rate spike in the middle), and skewed
// arrivals (Zipf-distributed bulk sizes, so a few arrivals carry many
// balls). Latencies are recorded in log-bucketed histograms
// (internal/hdrhist) and summarized as p50/p90/p99/p999.
package load

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdrhist"
	"repro/internal/keyed"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Target is where generated operations go. Implementations must be
// safe for concurrent use.
type Target interface {
	// Place allocates count balls and returns their bins.
	Place(ctx context.Context, count int) (bins []int, samples int64, err error)
	// Remove takes one ball out of bin.
	Remove(ctx context.Context, bin int) error
}

// StatsReader is implemented by targets that can report the serving
// stats view (used to stamp end-of-run load state into results).
type StatsReader interface {
	ReadStats(ctx context.Context) (serve.StatsView, error)
}

// ClusterStatsReader is implemented by targets fronting a routing tier
// (the in-proc ClusterTarget, and HTTPTarget when pointed at a
// bbproxy): it reports the aggregated cluster stats so runs can be
// stamped with the routing policy and the cross-backend balance it
// achieved. ok is false when the target is not a cluster.
type ClusterStatsReader interface {
	ReadClusterStats(ctx context.Context) (cs cluster.Stats, ok bool, err error)
}

// KeyedTarget is implemented by targets that accept keyed operations
// (every built-in target does). Keyed scenarios require it.
type KeyedTarget interface {
	// PlaceKey places one ball for key.
	PlaceKey(ctx context.Context, key string) (bins []int, samples int64, err error)
	// RemoveKey removes one of key's balls from bin.
	RemoveKey(ctx context.Context, bin int, key string) error
}

// KeyedStatsReader reports the target's keyed-tier stats block, used
// to stamp affinity_hit_rate / keys_moved into keyed run records. ok
// is false when the target serves no keyed tier.
type KeyedStatsReader interface {
	ReadKeyedStats(ctx context.Context) (ks keyed.Stats, ok bool, err error)
}

// TransportStats describes a network target's client-side transport
// efficiency: which transport ran, how many requests were coalesced
// into each socket write, and the socket bytes each operation cost.
type TransportStats struct {
	Transport        string
	CoalescingFactor float64
	BytesPerOp       float64
}

// TransportStatsReader is implemented by network targets (HTTPTarget,
// WireTarget) so runs can be stamped with transport columns. ok is
// false for in-proc targets, which have no transport.
type TransportStatsReader interface {
	ReadTransportStats() (ts TransportStats, ok bool)
}

// BackendKiller is implemented by targets that can abruptly kill one
// of their backends mid-run (the in-proc ClusterTarget) — the
// membership-kill scenario's trigger. It returns the killed slot.
type BackendKiller interface {
	KillBackend() int
}

// ProxyRestarter is implemented by targets that can crash and restart
// their routing tier mid-run from durable state (the in-proc
// ClusterTarget with a DataDir) — the restart scenario's trigger. It
// reports the recovery replay time and the number of key assignments
// reconstructed.
type ProxyRestarter interface {
	RestartProxy() (recoveryMs int64, recovered int64, err error)
}

// Phase is one segment of a scenario: for Frac of the run's duration,
// arrivals come at Rate times the configured base rate. Hot > 0
// redirects that fraction of the phase's keyed arrivals to one
// designated hot key (the hot-key flash). Phases describe the
// open-loop arrival process; closed-loop runs have none, so both
// Rate and Hot shaping are ignored there (a closed keyed-flash
// measures plain keyed saturation).
type Phase struct {
	Frac float64 `json:"frac"`
	Rate float64 `json:"rate"`
	Hot  float64 `json:"hot,omitempty"`
}

// Scenario shapes the arrival process of an open-loop run.
type Scenario struct {
	Name   string  `json:"name"`
	Phases []Phase `json:"phases"`
	// BatchZipfS > 0 draws each arrival's bulk size from a Zipf(s)
	// distribution on [1, BatchMax] (skewed arrivals); the arrival
	// event rate is scaled down by the mean bulk size so the offered
	// ball rate still matches the configured rate.
	BatchZipfS float64 `json:"batch_zipf_s,omitempty"`
	BatchMax   int     `json:"batch_max,omitempty"`

	// Keyed runs the scenario through the keyed placement API: every
	// arrival is one ball for a key drawn Zipf(KeyZipfS) over a space
	// of KeySpace keys from its own seedable stream, and its departure
	// releases that key's ball. Requires the target to implement
	// KeyedTarget.
	Keyed    bool    `json:"keyed,omitempty"`
	KeyZipfS float64 `json:"key_zipf_s,omitempty"` // default 1.2 (must be > 1)
	KeySpace int     `json:"key_space,omitempty"`  // default 1024
	// KeyChurnRotations > 0 rotates the key space that many times over
	// the run: fresh keys keep arriving while earlier ones go idle —
	// the key-churn regime (affinity under arrival/departure of the
	// keys themselves, not just their balls).
	KeyChurnRotations int `json:"key_churn_rotations,omitempty"`
	// KillBackendFrac > 0 kills one backend at that fraction of the
	// run, when the target supports it (membership-kill scenarios).
	KillBackendFrac float64 `json:"kill_backend_frac,omitempty"`
	// RestartProxyFrac > 0 crash-restarts the routing tier from its
	// durable state at that fraction of the run, when the target
	// supports it (WAL recovery scenarios).
	RestartProxyFrac float64 `json:"restart_proxy_frac,omitempty"`
}

// Steady is constant-rate churn for the whole run.
func Steady() Scenario {
	return Scenario{Name: "steady", Phases: []Phase{{1, 1, 0}}}
}

// Ramp steps the rate from 20% to 100% in five equal phases.
func Ramp() Scenario {
	return Scenario{Name: "ramp", Phases: []Phase{
		{0.2, 0.2, 0}, {0.2, 0.4, 0}, {0.2, 0.6, 0}, {0.2, 0.8, 0}, {0.2, 1, 0},
	}}
}

// Flash is a flash crowd: baseline at half rate, with the middle fifth
// of the run spiking to three times the base rate.
func Flash() Scenario {
	return Scenario{Name: "flash", Phases: []Phase{
		{0.4, 0.5, 0}, {0.2, 3, 0}, {0.4, 0.5, 0},
	}}
}

// Skew keeps a steady offered ball rate but delivers it in
// Zipf-distributed bulks of up to 32, so a few arrivals are heavy.
func Skew() Scenario {
	return Scenario{
		Name:   "skew",
		Phases: []Phase{{1, 1, 0}},
		// s = 1.5 over [1,32]: most arrivals are single balls, the
		// occasional one carries tens.
		BatchZipfS: 1.5,
		BatchMax:   32,
	}
}

// KeyedSteady is steady keyed churn: one ball per arrival for a
// Zipf-popular key, departing after its service time.
func KeyedSteady() Scenario {
	return Scenario{Name: "keyed", Phases: []Phase{{1, 1, 0}},
		Keyed: true, KeyZipfS: 1.2, KeySpace: 1024}
}

// KeyedFlash is the hot-key flash: steady keyed traffic, with the
// middle fifth of the run sending 30% of arrivals (at 1.5× rate) to
// one single key — the workload hot-key splitting exists for.
func KeyedFlash() Scenario {
	return Scenario{Name: "keyed-flash", Phases: []Phase{
		{0.4, 1, 0}, {0.2, 1.5, 0.3}, {0.4, 1, 0},
	}, Keyed: true, KeyZipfS: 1.2, KeySpace: 1024}
}

// KeyedChurn rotates the key space four times over the run: keys
// themselves arrive and depart, exercising assignment-table turnover
// under sustained traffic.
func KeyedChurn() Scenario {
	return Scenario{Name: "keyed-churn", Phases: []Phase{{1, 1, 0}},
		Keyed: true, KeyZipfS: 1.2, KeySpace: 1024, KeyChurnRotations: 4}
}

// KeyedKill is keyed steady traffic with one backend killed at the
// run's midpoint (targets implementing BackendKiller; a no-op
// otherwise) — the membership-kill disruption scenario.
func KeyedKill() Scenario {
	return Scenario{Name: "keyed-kill", Phases: []Phase{{1, 1, 0}},
		Keyed: true, KeyZipfS: 1.2, KeySpace: 1024, KillBackendFrac: 0.5}
}

// KeyedRestart is keyed steady traffic with the routing tier
// crash-restarted from its WAL at the run's midpoint (targets
// implementing ProxyRestarter; a no-op otherwise) — the durability
// disruption scenario: affinity should survive the restart.
func KeyedRestart() Scenario {
	return Scenario{Name: "keyed-restart", Phases: []Phase{{1, 1, 0}},
		Keyed: true, KeyZipfS: 1.2, KeySpace: 1024, RestartProxyFrac: 0.5}
}

// Scenarios lists the preset names ByName accepts.
func Scenarios() []string {
	return []string{"steady", "ramp", "flash", "skew", "keyed", "keyed-flash", "keyed-churn", "keyed-kill", "keyed-restart"}
}

// ByName resolves a scenario preset.
func ByName(name string) (Scenario, error) {
	switch strings.ToLower(name) {
	case "steady":
		return Steady(), nil
	case "ramp":
		return Ramp(), nil
	case "flash":
		return Flash(), nil
	case "skew":
		return Skew(), nil
	case "keyed", "keyed-steady":
		return KeyedSteady(), nil
	case "keyed-flash":
		return KeyedFlash(), nil
	case "keyed-churn":
		return KeyedChurn(), nil
	case "keyed-kill":
		return KeyedKill(), nil
	case "keyed-restart":
		return KeyedRestart(), nil
	default:
		return Scenario{}, fmt.Errorf("unknown scenario %q (want one of %s)",
			name, strings.Join(Scenarios(), ", "))
	}
}

// Config parameterizes one generator run.
type Config struct {
	Scenario Scenario
	// Mode is "open" or "closed".
	Mode string
	// Rate is the open-loop offered ball rate per second at phase
	// multiplier 1.
	Rate float64
	// Workers is the closed-loop concurrency.
	Workers int
	// Duration is the measurement window (arrival window in open
	// loop).
	Duration time.Duration
	// ServiceMean and ServiceDist ("exp" or "lognormal", σ = 1) shape
	// open-loop departure times.
	ServiceMean time.Duration
	ServiceDist string
	Seed        int64
	// MaxOutstanding caps concurrent open-loop operations; arrivals
	// beyond it are shed (counted in Result.Shed) rather than queued,
	// preserving open-loop semantics under saturation. Default 16384.
	MaxOutstanding int
}

// Result is one generator run's measurements — the per-case record of
// the bbserve/v1 BENCH schema.
type Result struct {
	Scenario    string  `json:"scenario"`
	Mode        string  `json:"mode"`
	Target      string  `json:"target"`
	Protocol    string  `json:"protocol,omitempty"`
	N           int     `json:"n,omitempty"`
	Shards      int     `json:"shards,omitempty"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	DurationSec float64 `json:"duration_sec"`
	ServiceMs   float64 `json:"service_mean_ms,omitempty"`
	ServiceDist string  `json:"service_dist,omitempty"`

	Placed  int64 `json:"placed"`
	Removed int64 `json:"removed"`
	Shed    int64 `json:"shed"`
	// Errors = PlaceErrors + RemoveErrors. The split matters for
	// cluster runs: a dying backend strands its balls, so their
	// departures fail (RemoveErrors), while placements should ride
	// failover without a single client-visible error (PlaceErrors 0).
	Errors       int64 `json:"errors"`
	PlaceErrors  int64 `json:"place_errors"`
	RemoveErrors int64 `json:"remove_errors"`
	// ThroughputPerSec is placed balls per second of the measurement
	// window.
	ThroughputPerSec float64 `json:"throughput_per_sec"`

	PlaceLatencyNs  serve.Latency `json:"place_latency_ns"`
	RemoveLatencyNs serve.Latency `json:"remove_latency_ns"`

	// WorkerErrors breaks Errors down per closed-loop worker (index =
	// worker id), so a run where one worker's connection went bad is
	// distinguishable from uniform failure — without it, partial
	// failure hides inside the total and cluster runs are unauditable.
	WorkerErrors []int64 `json:"worker_errors,omitempty"`

	// End-of-run serving state, when the target can report it.
	FinalBalls   int64   `json:"final_balls,omitempty"`
	FinalMaxLoad int     `json:"final_max_load,omitempty"`
	FinalGap     int     `json:"final_gap,omitempty"`
	Combining    float64 `json:"combining_factor,omitempty"`

	// Transport columns, stamped for network targets: which transport
	// carried the run ("http" or "wire" — empty for in-proc targets,
	// which discriminates these cases), the client-side coalescing
	// factor (requests per socket write; 1 by definition for HTTP),
	// and measured socket bytes per operation. No omitempty on the
	// numerics — Transport tells real zeros from missing data.
	Transport        string  `json:"transport,omitempty"`
	ClientCoalescing float64 `json:"client_coalescing_factor"`
	ClientBytesPerOp float64 `json:"client_bytes_per_op"`

	// Cluster-mode fields, stamped when the target fronts a routing
	// tier: the policy that routed, the backend count, the end-of-run
	// cross-backend ball gap (the routing tier's headline balance
	// metric), and the probes each routing decision cost. Policy and
	// Backends discriminate cluster cases; the metrics deliberately
	// have no omitempty — a gap of 0 is a perfect-balance result, not
	// missing data (non-cluster cases serialize them as zeros; check
	// Policy to tell the two apart).
	Policy          string  `json:"policy,omitempty"`
	Backends        int     `json:"backends,omitempty"`
	HealthyBackends int     `json:"healthy_backends"`
	ClusterGap      int64   `json:"cluster_gap"`
	MaxBackendBalls int64   `json:"max_backend_balls"`
	ProbesPerPick   float64 `json:"probes_per_pick"`
	Failovers       int64   `json:"failovers"`

	// Keyed-tier fields (the bbkeyed/v1 schema additions), stamped for
	// keyed scenarios from the target's keyed stats block. Like the
	// cluster metrics, the counters carry no omitempty — zero moved
	// keys or a zero hit rate is a measurement, not missing data
	// (KeyedPolicy discriminates keyed cases).
	KeyedPolicy     string  `json:"keyed_policy,omitempty"`
	KeySpace        int     `json:"key_space,omitempty"`
	KeyZipfS        float64 `json:"key_zipf_s,omitempty"`
	Keys            int64   `json:"keys"`
	HotKeys         int64   `json:"hot_keys"`
	AffinityHitRate float64 `json:"affinity_hit_rate"`
	KeysMoved       int64   `json:"keys_moved"`
	KeysShed        int64   `json:"keys_shed"`
	MaxKeyLoad      int64   `json:"max_key_load"`
	// KilledBackend is the slot killed mid-run, -1 when no kill fired
	// (slot 0 is a valid victim, so absence cannot mean "none").
	KilledBackend int `json:"killed_backend"`

	// Restart-scenario fields, stamped when a mid-run proxy
	// crash-restart fired: the WAL recovery replay time, the key
	// assignments reconstructed from snapshot + journal, and the
	// affinity hit rate measured after the restart (the restored
	// KeyMap's counters start at zero, so the end-of-run hit rate
	// covers exactly the post-restart window). ProxyRestarted
	// discriminates: a recovery of 0ms/0 keys is a measurement on a
	// restart run, absent data otherwise.
	ProxyRestarted             bool    `json:"proxy_restarted,omitempty"`
	RecoveryMs                 int64   `json:"recovery_ms"`
	AssignmentsRecovered       int64   `json:"assignments_recovered"`
	AffinityHitRatePostRestart float64 `json:"affinity_hit_rate_post_restart"`

	// Observability columns: the run's top-10 slowest client-timed
	// operations joined against the target's trace ring (SlowOps, when
	// the target exposes one), and the server's per-stage p99 latency
	// decomposition (queue/apply on a bbserved, probe/forward on a
	// bbproxy).
	SlowOps    []SlowOp         `json:"slow_ops,omitempty"`
	StageP99Ns map[string]int64 `json:"stage_p99_ns,omitempty"`

	// Watchdog columns, stamped when the target runs the invariant
	// watchdog: the server's gap-over-time series for the run and the
	// cumulative bound-violation count at run end. Violations carries no
	// omitempty — on a watched run, 0 is the acceptance result (every
	// paper bound held), not missing data (GapOverTime being non-empty
	// discriminates watched runs).
	GapOverTime []GapPoint `json:"gap_over_time,omitempty"`
	Violations  int64      `json:"violations"`
}

// Run executes one generator run against the target.
func Run(ctx context.Context, cfg Config, target Target) (Result, error) {
	if cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("load: duration must be positive")
	}
	if len(cfg.Scenario.Phases) == 0 {
		cfg.Scenario = Steady()
	}
	if s := cfg.Scenario.BatchZipfS; s > 0 && s <= 1 {
		// rand.NewZipf needs s > 1 (it returns nil otherwise).
		return Result{}, fmt.Errorf("load: scenario %q: BatchZipfS must be > 1, got %v",
			cfg.Scenario.Name, s)
	}
	if cfg.Scenario.Keyed {
		if cfg.Scenario.KeyZipfS == 0 {
			cfg.Scenario.KeyZipfS = 1.2
		}
		if cfg.Scenario.KeySpace <= 0 {
			cfg.Scenario.KeySpace = 1024
		}
		if s := cfg.Scenario.KeyZipfS; s <= 1 {
			return Result{}, fmt.Errorf("load: scenario %q: KeyZipfS must be > 1, got %v",
				cfg.Scenario.Name, s)
		}
		if _, ok := target.(KeyedTarget); !ok {
			return Result{}, fmt.Errorf("load: scenario %q is keyed but target %T has no keyed API",
				cfg.Scenario.Name, target)
		}
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 16384
	}
	var killed atomic.Int64
	killed.Store(-1)
	if f := cfg.Scenario.KillBackendFrac; f > 0 && f < 1 {
		if bk, ok := target.(BackendKiller); ok {
			tm := time.AfterFunc(time.Duration(f*float64(cfg.Duration)), func() {
				killed.Store(int64(bk.KillBackend()))
			})
			defer tm.Stop()
		}
	}
	var restarted atomic.Bool
	var recoveryMs, recovered atomic.Int64
	if f := cfg.Scenario.RestartProxyFrac; f > 0 && f < 1 {
		if pr, ok := target.(ProxyRestarter); ok {
			tm := time.AfterFunc(time.Duration(f*float64(cfg.Duration)), func() {
				if ms, n, rerr := pr.RestartProxy(); rerr == nil {
					recoveryMs.Store(ms)
					recovered.Store(n)
					restarted.Store(true)
				}
			})
			defer tm.Stop()
		}
	}
	slow := &slowTracker{}
	var res Result
	var err error
	switch cfg.Mode {
	case "open":
		if cfg.Rate <= 0 {
			return Result{}, fmt.Errorf("load: open loop needs a positive rate")
		}
		if cfg.ServiceMean <= 0 {
			return Result{}, fmt.Errorf("load: open loop needs a positive service mean")
		}
		res, err = runOpen(ctx, cfg, target, slow)
	case "closed":
		if cfg.Workers <= 0 {
			return Result{}, fmt.Errorf("load: closed loop needs workers > 0")
		}
		res, err = runClosed(ctx, cfg, target, slow)
	default:
		return Result{}, fmt.Errorf("load: unknown mode %q (want open or closed)", cfg.Mode)
	}
	if err != nil {
		return res, err
	}
	if sr, ok := target.(StatsReader); ok {
		if v, serr := sr.ReadStats(ctx); serr == nil {
			res.FinalBalls = v.Balls
			res.FinalMaxLoad = v.MaxLoad
			res.FinalGap = v.Gap
			res.Combining = v.CombiningFactor
		}
	}
	if tr, ok := target.(TransportStatsReader); ok {
		if ts, isNet := tr.ReadTransportStats(); isNet {
			res.Transport = ts.Transport
			res.ClientCoalescing = ts.CoalescingFactor
			res.ClientBytesPerOp = ts.BytesPerOp
		}
	}
	if cr, ok := target.(ClusterStatsReader); ok {
		if cs, isCluster, cerr := cr.ReadClusterStats(ctx); cerr == nil && isCluster {
			res.Policy = cs.Policy
			res.Backends = cs.Backends
			res.HealthyBackends = cs.Healthy
			res.ClusterGap = cs.BackendGap
			res.MaxBackendBalls = cs.MaxBackendBalls
			res.ProbesPerPick = cs.ProbesPerPick
			res.Failovers = cs.Failovers
		}
	}
	if cfg.Scenario.Keyed {
		res.KeySpace = cfg.Scenario.KeySpace
		res.KeyZipfS = cfg.Scenario.KeyZipfS
		if kr, ok := target.(KeyedStatsReader); ok {
			if ks, isKeyed, kerr := kr.ReadKeyedStats(ctx); kerr == nil && isKeyed {
				res.KeyedPolicy = ks.Policy
				res.Keys = ks.Keys
				res.HotKeys = ks.HotKeys
				res.AffinityHitRate = ks.AffinityHitRate
				res.KeysMoved = ks.MovedKeys
				res.KeysShed = ks.ShedKeys
				res.MaxKeyLoad = ks.MaxKeyLoad
			}
		}
	}
	res.KilledBackend = int(killed.Load())
	if restarted.Load() {
		res.ProxyRestarted = true
		res.RecoveryMs = recoveryMs.Load()
		res.AssignmentsRecovered = recovered.Load()
		res.AffinityHitRatePostRestart = res.AffinityHitRate
	}
	if sr, ok := target.(StageStatsReader); ok {
		if m, isObs, serr := sr.ReadStageStats(ctx); serr == nil && isObs {
			res.StageP99Ns = stageP99(m)
		}
	}
	if wr, ok := target.(WatchReader); ok {
		if doc, isWatched, werr := wr.ReadWatch(ctx); werr == nil && isWatched {
			res.GapOverTime = gapSeries(doc)
			res.Violations = doc.ViolationsTotal
		}
	}
	if tr, ok := target.(TraceReader); ok {
		res.SlowOps = slow.join(ctx, tr)
	}
	return res, nil
}

// sampler draws inter-arrival gaps, service times and bulk sizes. It
// is used only by the single scheduler goroutine, so a plain rand.Rand
// suffices.
type sampler struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	sigma    float64
	logNorm  bool
	mean     float64 // service mean in seconds
	meanBulk float64

	// Key-popularity stream for keyed scenarios: its own seeded
	// generator (cfg.Seed+2), so key draws are reproducible and
	// independent of arrival timing draws.
	keyRng   *rand.Rand
	keyZipf  *rand.Zipf
	keySpace int
	churn    int
}

func newSampler(cfg Config) *sampler {
	s := &sampler{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		logNorm:  cfg.ServiceDist == "lognormal",
		sigma:    1,
		mean:     cfg.ServiceMean.Seconds(),
		meanBulk: 1,
	}
	if sc := cfg.Scenario; sc.BatchZipfS > 0 {
		max := sc.BatchMax
		if max < 2 {
			max = 32
		}
		s.zipf = rand.NewZipf(s.rng, sc.BatchZipfS, 1, uint64(max-1))
		// Estimate the mean bulk size empirically so the offered ball
		// rate can be held at the configured value.
		probe := rand.NewZipf(rand.New(rand.NewSource(cfg.Seed+1)), sc.BatchZipfS, 1, uint64(max-1))
		var sum float64
		const probes = 20000
		for i := 0; i < probes; i++ {
			sum += float64(probe.Uint64() + 1)
		}
		s.meanBulk = sum / probes
	}
	if sc := cfg.Scenario; sc.Keyed {
		s.keyRng = rand.New(rand.NewSource(cfg.Seed + 2))
		s.keyZipf = rand.NewZipf(s.keyRng, sc.KeyZipfS, 1, uint64(sc.KeySpace-1))
		s.keySpace = sc.KeySpace
		s.churn = sc.KeyChurnRotations
	}
	return s
}

// key draws the next arrival's key: the designated hot key with
// probability hot, otherwise a Zipf-popular key id — shifted by the
// churn epoch (frac = elapsed fraction of the run) so the key space
// rotates KeyChurnRotations times over the run.
func (s *sampler) key(frac, hot float64) string {
	if s.keyZipf == nil {
		return ""
	}
	if hot > 0 && s.keyRng.Float64() < hot {
		return "hot"
	}
	id := int(s.keyZipf.Uint64())
	if s.churn > 0 {
		epoch := int(frac * float64(s.churn))
		id += epoch * s.keySpace
	}
	return "k" + strconv.Itoa(id)
}

// gap returns the next Poisson inter-arrival time for arrival events
// at ballRate balls/sec (scaled by the mean bulk size).
func (s *sampler) gap(ballRate float64) time.Duration {
	eventRate := ballRate / s.meanBulk
	return time.Duration(s.rng.ExpFloat64() / eventRate * float64(time.Second))
}

// bulk returns the next arrival's ball count.
func (s *sampler) bulk() int {
	if s.zipf == nil {
		return 1
	}
	return int(s.zipf.Uint64()) + 1
}

// service returns a departure delay with the configured mean:
// exponential, or lognormal with σ=1 (same mean, heavier tail).
func (s *sampler) service() time.Duration {
	var x float64
	if s.logNorm {
		mu := math.Log(s.mean) - s.sigma*s.sigma/2
		x = math.Exp(mu + s.sigma*s.rng.NormFloat64())
	} else {
		x = s.rng.ExpFloat64() * s.mean
	}
	return time.Duration(x * float64(time.Second))
}

func runOpen(ctx context.Context, cfg Config, target Target, slow *slowTracker) (Result, error) {
	smp := newSampler(cfg)
	placeHist, removeHist := hdrhist.New(), hdrhist.New()
	var placed, removed, shed, placeErrs, removeErrs atomic.Int64
	var outstanding atomic.Int64

	// sleepCtx is cancelled at the drain cutoff. It interrupts ONLY the
	// departure sleeps still pending then — an admitted place or an
	// elapsed departure's remove always runs to completion against the
	// caller's ctx, so no operation is abandoned mid-flight (an HTTP
	// request cancelled mid-flight leaves the client unsure whether the
	// ball was committed, which would break the books) and every error
	// counted is a real target failure.
	grace := 2 * cfg.ServiceMean
	if grace < 250*time.Millisecond {
		grace = 250 * time.Millisecond
	}
	if grace > 5*time.Second {
		grace = 5 * time.Second
	}
	sleepCtx, cancelSleeps := context.WithCancel(ctx)
	defer cancelSleeps()

	kt, _ := target.(KeyedTarget)

	var wg sync.WaitGroup
	depart := func(bin int, key string, after time.Duration) {
		defer wg.Done()
		select {
		case <-time.After(after):
		case <-sleepCtx.Done():
			return // departure abandoned at drain; the ball stays live
		}
		// Every op carries a freshly minted trace id so its server-side
		// spans (if the server samples or tail-captures it) are joinable
		// with the client-observed latency in the slow_ops table.
		trace := obs.NewTraceID()
		opCtx := obs.WithTrace(ctx, trace)
		t0 := time.Now()
		var err error
		if key != "" {
			err = kt.RemoveKey(opCtx, bin, key)
		} else {
			err = target.Remove(opCtx, bin)
		}
		if err != nil {
			removeErrs.Add(1)
			return
		}
		el := time.Since(t0)
		removeHist.Record(el.Nanoseconds())
		slow.note(trace, "remove", el.Nanoseconds())
		removed.Add(1)
	}
	arrive := func(bulk int, key string, services []time.Duration) {
		defer wg.Done()
		defer outstanding.Add(-1)
		trace := obs.NewTraceID()
		opCtx := obs.WithTrace(ctx, trace)
		t0 := time.Now()
		var bins []int
		var err error
		if key != "" {
			bins, _, err = kt.PlaceKey(opCtx, key)
		} else {
			bins, _, err = target.Place(opCtx, bulk)
		}
		if err != nil {
			placeErrs.Add(1)
			return
		}
		el := time.Since(t0)
		placeHist.Record(el.Nanoseconds())
		slow.note(trace, "place", el.Nanoseconds())
		placed.Add(int64(len(bins)))
		for i, bin := range bins {
			wg.Add(1)
			go depart(bin, key, services[i])
		}
	}

	start := time.Now()
	deadlinePhases := time.Duration(0)
	for _, ph := range cfg.Scenario.Phases {
		phaseEnd := deadlinePhases + time.Duration(ph.Frac*float64(cfg.Duration))
		deadlinePhases = phaseEnd
		rate := cfg.Rate * ph.Rate
		if rate <= 0 {
			// Idle phase: just wait it out.
			select {
			case <-time.After(phaseEnd - time.Since(start)):
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
			continue
		}
		next := time.Since(start)
		for {
			next += smp.gap(rate)
			if next >= phaseEnd {
				break
			}
			if sleep := next - time.Since(start); sleep > 0 {
				select {
				case <-time.After(sleep):
				case <-ctx.Done():
					return Result{}, ctx.Err()
				}
			}
			bulk := 1
			var key string
			if cfg.Scenario.Keyed {
				// A keyed arrival is one ball for one key (the API
				// refuses keyed bulks); the key draw happens here, on
				// the single scheduler goroutine, so the key sequence
				// is a deterministic function of the seed.
				key = smp.key(float64(time.Since(start))/float64(cfg.Duration), ph.Hot)
			} else {
				bulk = smp.bulk()
			}
			services := make([]time.Duration, bulk)
			for i := range services {
				services[i] = smp.service()
			}
			if outstanding.Load() >= int64(cfg.MaxOutstanding) {
				shed.Add(int64(bulk))
				continue
			}
			outstanding.Add(1)
			wg.Add(1)
			go arrive(bulk, key, services)
		}
		if sleep := phaseEnd - time.Since(start); sleep > 0 {
			select {
			case <-time.After(sleep):
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}
	}
	window := time.Since(start)

	// Drain: near-term departures get the grace period to fire, then
	// pending sleeps are cut and the remaining in-flight operations
	// run to completion.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(grace):
		cancelSleeps()
		<-done
	}

	res := describe(cfg, "open")
	res.DurationSec = window.Seconds()
	res.Placed = placed.Load()
	res.Removed = removed.Load()
	res.Shed = shed.Load()
	res.PlaceErrors = placeErrs.Load()
	res.RemoveErrors = removeErrs.Load()
	res.Errors = res.PlaceErrors + res.RemoveErrors
	res.ThroughputPerSec = float64(res.Placed) / window.Seconds()
	res.PlaceLatencyNs = serve.LatencySummary(placeHist.Snapshot())
	res.RemoveLatencyNs = serve.LatencySummary(removeHist.Snapshot())
	return res, nil
}

func runClosed(ctx context.Context, cfg Config, target Target, slow *slowTracker) (Result, error) {
	placeHist, removeHist := hdrhist.New(), hdrhist.New()
	var placed, removed, placeErrs, removeErrs atomic.Int64
	// Errors are accounted per worker (each owns its slot; read after
	// Wait), so a single bad worker is visible in the envelope instead
	// of hiding inside a total.
	workerErrs := make([]int64, cfg.Workers)
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	kt, _ := target.(KeyedTarget)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each keyed worker draws from its own seeded key stream, so
			// runs are reproducible regardless of scheduling. Key churn
			// applies here too: the key space rotates with elapsed time.
			var keys *rand.Zipf
			if sc := cfg.Scenario; sc.Keyed {
				keys = rand.NewZipf(rand.New(rand.NewSource(cfg.Seed+100+int64(w))),
					sc.KeyZipfS, 1, uint64(sc.KeySpace-1))
			}
			for runCtx.Err() == nil {
				var key string
				if keys != nil {
					id := int(keys.Uint64())
					if rot := cfg.Scenario.KeyChurnRotations; rot > 0 {
						frac := float64(time.Since(start)) / float64(cfg.Duration)
						if frac > 1 {
							frac = 1
						}
						id += int(frac*float64(rot)) * cfg.Scenario.KeySpace
					}
					key = "k" + strconv.Itoa(id)
				}
				trace := obs.NewTraceID()
				opCtx := obs.WithTrace(runCtx, trace)
				t0 := time.Now()
				var bins []int
				var err error
				if key != "" {
					bins, _, err = kt.PlaceKey(opCtx, key)
				} else {
					bins, _, err = target.Place(opCtx, 1)
				}
				if err != nil {
					if runCtx.Err() == nil {
						// Transient failure: count it and keep
						// measuring — a worker that quits would
						// silently deflate the saturation throughput
						// for the rest of the run. Back off briefly so
						// a hard-down target doesn't spin.
						workerErrs[w]++
						placeErrs.Add(1)
						time.Sleep(time.Millisecond)
					}
					continue
				}
				el := time.Since(t0)
				placeHist.Record(el.Nanoseconds())
				slow.note(trace, "place", el.Nanoseconds())
				placed.Add(1)
				t1 := time.Now()
				// The pair is the unit of work: finish the remove even
				// if the deadline landed mid-cycle, so the run ends
				// with the target drained back to empty.
				var rerr error
				if key != "" {
					rerr = kt.RemoveKey(context.Background(), bins[0], key)
				} else {
					rerr = target.Remove(context.Background(), bins[0])
				}
				if err := rerr; err != nil {
					workerErrs[w]++
					removeErrs.Add(1)
					time.Sleep(time.Millisecond)
					continue
				}
				removeHist.RecordSince(t1)
				removed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	window := time.Since(start)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	res := describe(cfg, "closed")
	res.DurationSec = window.Seconds()
	res.Placed = placed.Load()
	res.Removed = removed.Load()
	res.WorkerErrors = workerErrs
	res.PlaceErrors = placeErrs.Load()
	res.RemoveErrors = removeErrs.Load()
	for _, e := range workerErrs {
		res.Errors += e
	}
	res.ThroughputPerSec = float64(res.Placed) / window.Seconds()
	res.PlaceLatencyNs = serve.LatencySummary(placeHist.Snapshot())
	res.RemoveLatencyNs = serve.LatencySummary(removeHist.Snapshot())
	return res, nil
}

func describe(cfg Config, mode string) Result {
	res := Result{
		Scenario: cfg.Scenario.Name,
		Mode:     mode,
	}
	if mode == "open" {
		res.RatePerSec = cfg.Rate
		res.ServiceMs = float64(cfg.ServiceMean) / float64(time.Millisecond)
		res.ServiceDist = cfg.ServiceDist
		if res.ServiceDist == "" {
			res.ServiceDist = "exp"
		}
	} else {
		res.Workers = cfg.Workers
	}
	return res
}
