package load

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/keyed"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wire"
)

// WireTarget drives a bbserved or bbproxy over the binary wire
// protocol — the -transport wire sibling of HTTPTarget. Every scenario
// runs unmodified on either transport; the STATS request returns the
// same JSON document as GET /v1/stats, so the stats readers share
// HTTPTarget's decode shape.
type WireTarget struct {
	C *wire.Client
	// Probe, when set, is an HTTP target for the same server, used for
	// the endpoints the wire protocol does not carry (GET /v1/trace).
	// cmd/bbload reuses its discovery probe here.
	Probe *HTTPTarget
}

// NewWireTarget dials a wire listener at addr (host:port) with a pool
// of conns connections (1 = the single-connection headline mode).
func NewWireTarget(addr string, conns int) (*WireTarget, error) {
	c, err := wire.Dial(addr, wire.ClientOptions{Conns: conns})
	if err != nil {
		return nil, err
	}
	return &WireTarget{C: c}, nil
}

// Close tears down the connection pool.
func (t *WireTarget) Close() error { return t.C.Close() }

// Place implements Target.
func (t *WireTarget) Place(ctx context.Context, count int) ([]int, int64, error) {
	return t.C.Place(ctx, count)
}

// Remove implements Target, mapping the empty-bin code back to the
// sentinel the generators count, like HTTPTarget maps the 409.
func (t *WireTarget) Remove(ctx context.Context, bin int) error {
	return wireRemoveErr(t.C.Remove(ctx, bin, ""))
}

// PlaceKey implements KeyedTarget.
func (t *WireTarget) PlaceKey(ctx context.Context, key string) ([]int, int64, error) {
	return t.C.PlaceKeyed(ctx, key)
}

// RemoveKey implements KeyedTarget.
func (t *WireTarget) RemoveKey(ctx context.Context, bin int, key string) error {
	return wireRemoveErr(t.C.Remove(ctx, bin, key))
}

func wireRemoveErr(err error) error {
	if err != nil && wire.ErrCode(err) == wire.CodeEmptyBin {
		return serve.ErrEmptyBin
	}
	return err
}

func (t *WireTarget) readStatsResponse(ctx context.Context) (statsEnvelope, error) {
	body, err := t.C.StatsJSON(ctx)
	if err != nil {
		return statsEnvelope{}, err
	}
	var sr statsEnvelope
	if err := json.Unmarshal(body, &sr); err != nil {
		return statsEnvelope{}, fmt.Errorf("load: decode wire stats: %w", err)
	}
	return sr, nil
}

// ReadStats implements StatsReader.
func (t *WireTarget) ReadStats(ctx context.Context) (serve.StatsView, error) {
	sr, err := t.readStatsResponse(ctx)
	return sr.StatsView, err
}

// ReadInfo mirrors HTTPTarget.ReadInfo for run labeling.
func (t *WireTarget) ReadInfo(ctx context.Context) (serve.Info, error) {
	sr, err := t.readStatsResponse(ctx)
	return sr.Info, err
}

// ReadClusterStats implements ClusterStatsReader (a bbproxy's wire
// STATS carries the same cluster block as its HTTP stats).
func (t *WireTarget) ReadClusterStats(ctx context.Context) (cluster.Stats, bool, error) {
	sr, err := t.readStatsResponse(ctx)
	if err != nil {
		return cluster.Stats{}, false, err
	}
	return sr.Cluster, sr.Cluster.Policy != "", nil
}

// ReadKeyedStats implements KeyedStatsReader.
func (t *WireTarget) ReadKeyedStats(ctx context.Context) (keyed.Stats, bool, error) {
	sr, err := t.readStatsResponse(ctx)
	if err != nil {
		return keyed.Stats{}, false, err
	}
	if sr.Cluster.Keyed != nil {
		return *sr.Cluster.Keyed, true, nil
	}
	if sr.Keyed != nil {
		return *sr.Keyed, true, nil
	}
	return keyed.Stats{}, false, nil
}

// ReadTrace implements TraceReader. An exact-id read uses the wire
// TRACE verb (protocol ≥ 3) so the slow-op join stays on the
// connection it measured; a whole-ring dump — which the wire protocol
// does not carry — and any peer predating TRACE fall back to the HTTP
// probe. ok is false when neither path is available.
func (t *WireTarget) ReadTrace(ctx context.Context, id string) (obs.TraceResponse, bool, error) {
	if id != "" {
		body, err := t.C.TraceJSON(ctx, obs.ParseTrace(id))
		if err == nil {
			var doc obs.TraceResponse
			if err := json.Unmarshal(body, &doc); err != nil {
				return obs.TraceResponse{}, false, err
			}
			return doc, true, nil
		}
		if !errors.Is(err, wire.ErrTraceUnsupported) {
			return obs.TraceResponse{}, false, err
		}
	}
	if t.Probe == nil {
		return obs.TraceResponse{}, false, nil
	}
	return t.Probe.ReadTrace(ctx, id)
}

// ReadStageStats implements StageStatsReader from the wire STATS
// document's obs block.
func (t *WireTarget) ReadStageStats(ctx context.Context) (map[string]obs.StageSummary, bool, error) {
	sr, err := t.readStatsResponse(ctx)
	if err != nil {
		return nil, false, err
	}
	return sr.Obs, len(sr.Obs) > 0, nil
}

// ReadTransportStats implements TransportStatsReader from the wire
// client's own counters.
func (t *WireTarget) ReadTransportStats() (TransportStats, bool) {
	s := t.C.Stats()
	return TransportStats{
		Transport:        "wire",
		CoalescingFactor: s.CoalescingFactor,
		BytesPerOp:       s.BytesPerOp,
	}, true
}
