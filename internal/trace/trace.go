// Package trace records time series of allocation runs: snapshots of
// the load distribution's summary statistics taken every fixed number
// of balls. The smoothness example uses it to show how the paper's
// potential functions evolve per stage (every n balls) for adaptive
// versus threshold.
package trace

import (
	"repro/internal/loadvec"
	"repro/internal/protocol"
)

// Event is one snapshot of a run in progress.
type Event struct {
	Ball    int64 // 1-based index of the ball just placed
	Samples int64 // cumulative random choices so far
	MaxLoad int
	MinLoad int
	Gap     int
	Psi     float64
	Phi     float64
}

// Recorder collects events, optionally bounded to the most recent
// Capacity entries (0 = unbounded).
type Recorder struct {
	Capacity int
	events   []Event
	dropped  int64
}

// Add appends an event, evicting the oldest when over capacity.
func (r *Recorder) Add(e Event) {
	if r.Capacity > 0 && len(r.events) >= r.Capacity {
		copy(r.events, r.events[1:])
		r.events[len(r.events)-1] = e
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events, oldest first. The returned slice
// is owned by the recorder; callers must not modify it.
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns how many events were evicted due to the capacity
// bound.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Sampler returns a protocol.Observer that snapshots the run every
// `every` balls (and always at the first ball). It panics if every <= 0.
func Sampler(every int64, rec *Recorder) protocol.Observer {
	if every <= 0 {
		panic("trace: Sampler with every <= 0")
	}
	var cumSamples int64
	return func(ball, samples int64, v *loadvec.Vector) {
		cumSamples += samples
		if ball%every != 0 && ball != 1 {
			return
		}
		rec.Add(Event{
			Ball:    ball,
			Samples: cumSamples,
			MaxLoad: v.MaxLoad(),
			MinLoad: v.MinLoad(),
			Gap:     v.Gap(),
			Psi:     v.QuadraticPotential(),
			Phi:     v.ExponentialPotential(loadvec.DefaultEpsilon),
		})
	}
}

// Columns converts the recorded events to parallel slices, convenient
// for charting: balls, psi, gap.
func (r *Recorder) Columns() (balls, psi, gap []float64) {
	balls = make([]float64, len(r.events))
	psi = make([]float64, len(r.events))
	gap = make([]float64, len(r.events))
	for i, e := range r.events {
		balls[i] = float64(e.Ball)
		psi[i] = e.Psi
		gap[i] = float64(e.Gap)
	}
	return balls, psi, gap
}
