package trace

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestSamplerRecordsEveryStage(t *testing.T) {
	const n, m = 32, 320
	var rec Recorder
	protocol.RunWithObserver(protocol.NewAdaptive(), n, m, rng.New(1),
		Sampler(n, &rec))
	// Records at ball 1 plus every n-th ball: 1 + m/n events.
	want := 1 + m/n
	if rec.Len() != want {
		t.Fatalf("recorded %d events, want %d", rec.Len(), want)
	}
	events := rec.Events()
	if events[0].Ball != 1 {
		t.Fatalf("first event at ball %d", events[0].Ball)
	}
	prevSamples := int64(0)
	for _, e := range events {
		if e.Samples < prevSamples {
			t.Fatalf("cumulative samples decreased at ball %d", e.Ball)
		}
		prevSamples = e.Samples
		if e.Gap != e.MaxLoad-e.MinLoad {
			t.Fatalf("gap inconsistent at ball %d", e.Ball)
		}
		if e.Psi < 0 {
			t.Fatalf("negative Psi at ball %d", e.Ball)
		}
	}
	last := events[len(events)-1]
	if last.Ball != m {
		t.Fatalf("last event at ball %d want %d", last.Ball, m)
	}
}

func TestRecorderCapacity(t *testing.T) {
	rec := Recorder{Capacity: 3}
	for i := int64(1); i <= 5; i++ {
		rec.Add(Event{Ball: i})
	}
	if rec.Len() != 3 {
		t.Fatalf("len = %d want 3", rec.Len())
	}
	if rec.Dropped() != 2 {
		t.Fatalf("dropped = %d want 2", rec.Dropped())
	}
	events := rec.Events()
	if events[0].Ball != 3 || events[2].Ball != 5 {
		t.Fatalf("wrong retained window: %+v", events)
	}
}

func TestSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sampler(0) did not panic")
		}
	}()
	Sampler(0, &Recorder{})
}

func TestColumns(t *testing.T) {
	var rec Recorder
	rec.Add(Event{Ball: 1, Psi: 2.5, Gap: 1})
	rec.Add(Event{Ball: 2, Psi: 3.5, Gap: 2})
	balls, psi, gap := rec.Columns()
	if len(balls) != 2 || balls[1] != 2 || psi[0] != 2.5 || gap[1] != 2 {
		t.Fatalf("columns wrong: %v %v %v", balls, psi, gap)
	}
}

func TestPsiGrowsForThresholdShrinksForAdaptiveLate(t *testing.T) {
	// Sanity for the smoothness example: threshold's Psi at the end of
	// a heavily loaded run exceeds adaptive's.
	const n, m = 64, 64 * 64
	run := func(p protocol.Protocol) float64 {
		var rec Recorder
		protocol.RunWithObserver(p, n, m, rng.New(2), Sampler(n, &rec))
		ev := rec.Events()
		return ev[len(ev)-1].Psi
	}
	psiA := run(protocol.NewAdaptive())
	psiT := run(protocol.NewThreshold())
	if psiA >= psiT {
		t.Fatalf("expected adaptive Psi (%.1f) < threshold Psi (%.1f)", psiA, psiT)
	}
}
