// Package netutil holds the small pieces of network-client plumbing
// shared by every tier that dials another tier: the pooled HTTP
// transport used by cluster backends and load targets (one tuning, so
// the tiers cannot drift), the default dial timeout the wire protocol
// shares with it, and a byte-counting conn wrapper for measuring a
// client's true on-the-wire cost per operation.
package netutil

import (
	"context"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// DefaultDialTimeout bounds connection establishment for every client
// in the system (HTTP transports and wire dials alike).
const DefaultDialTimeout = 3 * time.Second

// PooledTransport clones http.DefaultTransport with a keep-alive pool
// sized for maxIdle concurrent connections to one host — the shared
// setup behind cluster.NewHTTPBackend and load.NewHTTPTarget.
// maxConns > 0 additionally caps the total connections per host
// (dials beyond it block), which is how a "single-connection" HTTP
// comparison run is forced onto one socket.
func PooledTransport(maxIdle, maxConns int) *http.Transport {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = maxIdle
	tr.MaxIdleConnsPerHost = maxIdle
	tr.MaxConnsPerHost = maxConns
	return tr
}

// ByteCounter accumulates socket-level bytes moved by a client.
type ByteCounter struct {
	In  atomic.Int64
	Out atomic.Int64
}

// Total returns bytes read plus bytes written.
func (b *ByteCounter) Total() int64 { return b.In.Load() + b.Out.Load() }

// CountConns rewires tr's dialer so every connection it opens counts
// its reads and writes into c — the measurement behind the
// client_bytes_per_op bench column (actual socket bytes, not payload
// estimates).
func CountConns(tr *http.Transport, c *ByteCounter) {
	base := tr.DialContext
	if base == nil {
		d := &net.Dialer{Timeout: DefaultDialTimeout}
		base = d.DialContext
	}
	tr.DialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
		conn, err := base(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		return &countingConn{Conn: conn, c: c}, nil
	}
}

type countingConn struct {
	net.Conn
	c *ByteCounter
}

func (cc *countingConn) Read(p []byte) (int, error) {
	n, err := cc.Conn.Read(p)
	cc.c.In.Add(int64(n))
	return n, err
}

func (cc *countingConn) Write(p []byte) (int, error) {
	n, err := cc.Conn.Write(p)
	cc.c.Out.Add(int64(n))
	return n, err
}
