package loadvec

import (
	"testing"

	"repro/internal/rng"
)

// mirrorVector applies the same level moves to a Vector and a Hist and
// checks every shared aggregate agrees.
func checkHistMirrorsVector(t *testing.T, h *Hist, v *Vector) {
	t.Helper()
	if h.N() != v.N() || h.Balls() != v.Balls() ||
		h.MaxLoad() != v.MaxLoad() || h.MinLoad() != v.MinLoad() ||
		h.Gap() != v.Gap() || h.SumSquares() != v.SumSquares() {
		t.Fatalf("aggregates diverge: %v vs %v", h, v)
	}
	for l := -1; l <= h.MaxLoad()+2; l++ {
		if h.LevelCount(l) != v.LevelCount(l) {
			t.Fatalf("LevelCount(%d): %d vs %d", l, h.LevelCount(l), v.LevelCount(l))
		}
		if h.CountBelow(l) != v.CountBelow(l) {
			t.Fatalf("CountBelow(%d): %d vs %d", l, h.CountBelow(l), v.CountBelow(l))
		}
	}
	if hp, vp := h.QuadraticPotential(), v.QuadraticPotential(); hp != vp {
		t.Fatalf("Psi: %v vs %v", hp, vp)
	}
	if hp, vp := h.ExponentialPotential(DefaultEpsilon), v.ExponentialPotential(DefaultEpsilon); hp != vp {
		t.Fatalf("Phi: %v vs %v", hp, vp)
	}
	for c := 0; c <= h.MaxLoad()+1; c++ {
		if h.Holes(c) != v.Holes(c) {
			t.Fatalf("Holes(%d): %d vs %d", c, h.Holes(c), v.Holes(c))
		}
	}
}

func TestHistMirrorsVector(t *testing.T) {
	const n = 13
	h := NewHist(n)
	v := New(n)
	r := rng.New(5)
	checkHistMirrorsVector(t, h, v)
	for i := 0; i < 500; i++ {
		// Pick a uniform bin via the vector, mirror its level into the
		// histogram.
		bin := r.Intn(n)
		l := v.Load(bin)
		v.Increment(bin)
		h.IncrementLevel(l)
		checkHistMirrorsVector(t, h, v)
		if err := h.Validate(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestHistLevelOfRankPartition(t *testing.T) {
	h := NewHist(9)
	for _, l := range []int{0, 0, 0, 1, 1, 0, 2, 0, 1} {
		h.IncrementLevel(l)
	}
	// Ranks must enumerate levels in non-decreasing order with the
	// right multiplicities.
	prev := -1
	counts := map[int]int64{}
	for k := int64(0); k < 9; k++ {
		l := h.LevelOfRank(k)
		if l < prev {
			t.Fatalf("rank %d level %d below previous %d", k, l, prev)
		}
		prev = l
		counts[l]++
	}
	for l, c := range counts {
		if h.LevelCount(l) != c {
			t.Fatalf("level %d: rank multiplicity %d vs count %d", l, c, h.LevelCount(l))
		}
	}
}

func TestHistToVectorConsistent(t *testing.T) {
	const n = 40
	h := NewHist(n)
	r := rng.New(11)
	h.PlaceBelowBatch(r, 5*n, 6)
	v := h.ToVector(r)
	if err := v.Validate(); err != nil {
		t.Fatalf("materialized vector invalid: %v", err)
	}
	checkHistMirrorsVector(t, h, v)
}

func TestHistToVectorAssignsUniformly(t *testing.T) {
	// With one bin at level 1 and the rest at 0, the loaded bin's
	// identity must be uniform across materializations.
	const n = 8
	const reps = 8000
	counts := make([]int64, n)
	r := rng.New(3)
	for rep := 0; rep < reps; rep++ {
		h := NewHist(n)
		h.IncrementLevel(0)
		v := h.ToVector(r)
		for i := 0; i < n; i++ {
			if v.Load(i) == 1 {
				counts[i]++
			}
		}
	}
	for i, c := range counts {
		// 4-sigma band around reps/n.
		mean := float64(reps) / n
		if d := float64(c) - mean; d > 4*35 || d < -4*35 {
			t.Fatalf("bin %d got the ball %d times, want ~%.0f", i, c, mean)
		}
	}
}

func TestHistPlaceBelowBatchPanicsWithoutOpenBin(t *testing.T) {
	h := NewHist(2)
	h.IncrementLevel(0)
	h.IncrementLevel(0) // both bins at load 1
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for T=1 with no empty bin")
		}
	}()
	h.PlaceBelowBatch(rng.New(1), 1, 1)
}

func TestHistGenericSourceFallback(t *testing.T) {
	// A non-xoshiro source must take the generic draw path and still
	// satisfy every invariant.
	src := rng.NewPCG32(7, 11)
	r := rng.NewWith(src, 7)
	h := NewHist(32)
	h.PlaceBelowBatch(r, 320, 11)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Balls() != 320 {
		t.Fatalf("balls = %d", h.Balls())
	}
}

// FuzzHistMirrorsVector drives a Hist and a mirror Vector with the
// same deterministic tape (each byte selects a bin; the hist mirrors
// that bin's level) and checks the full shared-aggregate set plus
// materialization after every tape.
func FuzzHistMirrorsVector(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add([]byte{7, 7, 7, 7, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const n = 11
		h := NewHist(n)
		v := New(n)
		for _, op := range tape {
			bin := int(op) % n
			l := v.Load(bin)
			v.Increment(bin)
			h.IncrementLevel(l)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("hist invalid after %d ops: %v", len(tape), err)
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("vector invalid after %d ops: %v", len(tape), err)
		}
		checkHistMirrorsVector(t, h, v)
		mv := h.ToVector(rng.New(1))
		if err := mv.Validate(); err != nil {
			t.Fatalf("materialized vector invalid: %v", err)
		}
		checkHistMirrorsVector(t, h, mv)
	})
}

// FuzzHistPlaceBelowBatch interleaves deterministic level bumps with
// randomized PlaceBelowBatch bursts and validates every maintained
// invariant, the ball accounting, and that placements respected the
// threshold (no level T or above may gain bins from a below-T batch).
func FuzzHistPlaceBelowBatch(f *testing.F) {
	f.Add([]byte{0x83, 4, 0x90, 0x81})
	f.Add([]byte{7, 0xFF, 7, 0x80})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const n = 11
		h := NewHist(n)
		r := rng.New(99)
		for _, op := range tape {
			if op&0x80 != 0 {
				T := int(op&0x3F)%(h.MaxLoad()+2) + 1
				cb := h.CountBelow(T)
				if cb == 0 {
					continue
				}
				count := int64(op>>6&1) + 1 // 1 or 2 balls
				if count > cb {
					count = 1
				}
				before := h.Balls()
				maxBefore := h.MaxLoad()
				samples := h.PlaceBelowBatch(r, count, T)
				if samples < count {
					t.Fatalf("batch of %d reported %d samples", count, samples)
				}
				if h.Balls() != before+count {
					t.Fatalf("batch of %d moved balls %d -> %d", count, before, h.Balls())
				}
				if h.MaxLoad() > max(maxBefore, T) || h.MaxLoad() < maxBefore {
					t.Fatalf("batch below %d pushed max to %d (was %d)", T, h.MaxLoad(), maxBefore)
				}
			} else {
				l := int(op & 0x3F)
				if h.LevelCount(l) == 0 {
					continue
				}
				h.IncrementLevel(l)
			}
			if err := h.Validate(); err != nil {
				t.Fatalf("hist invalid: %v", err)
			}
		}
		mv := h.ToVector(r)
		if err := mv.Validate(); err != nil {
			t.Fatalf("materialized vector invalid: %v", err)
		}
		checkHistMirrorsVector(t, h, mv)
	})
}
