package loadvec

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/rng"
)

// Hist is the histogram-mode counterpart of Vector: it tracks only the
// level-count histogram (how many bins hold each load), not which bin
// holds what. Every aggregate query of Vector — ball count, min/max,
// gap, Σℓ², both potentials, CountBelow — is available with identical
// semantics, but the working set is O(#levels) instead of O(n), so a
// placement loop over a Hist runs entirely in L1 cache with no
// random memory accesses.
//
// The paper's rejection-sampling protocols are symmetric under bin
// relabeling: their dynamics depend on the load vector only through
// this histogram, and conditioned on the final histogram the
// assignment of loads to bin identities is uniform over all consistent
// assignments. A histogram-only simulation followed by ToVector (which
// draws that uniform assignment) therefore has exactly the load-vector
// distribution of the bin-by-bin process — the fact the fast engine in
// internal/protocol is built on.
type Hist struct {
	n      int
	levels []int64 // levels[ℓ] = number of bins with load exactly ℓ
	below  []int64 // below[ℓ] = number of bins with load < ℓ; len(levels)+1 entries, ends with n
	balls  int64
	sumSq  int64
	min    int32
	max    int32

	// rankHint[q] caches the level of rank q<<rankShift as of the last
	// rebuild (see PlaceBelowBatch). Because bins only move up, below
	// entries only decrease, so a cached level is always a lower bound
	// on the current level of any rank in its block — lookups correct
	// it with a short, purely upward scan. The fixed power-of-two size
	// lets lookups mask the index instead of bounds-checking it.
	rankHint  *[rankHintSize]int32
	rankShift uint
}

// rankHintSize is the rank→level hint table size: small enough to stay
// cache-resident, large enough that one block spans few levels.
const rankHintSize = 4096

// NewHist returns a Hist for n empty bins. It panics if n <= 0.
func NewHist(n int) *Hist {
	if n <= 0 {
		panic("loadvec: NewHist with n <= 0")
	}
	if int64(n) > math.MaxInt32 {
		panic("loadvec: NewHist with n > MaxInt32")
	}
	h := &Hist{
		n:      n,
		levels: make([]int64, 1, 16),
		below:  make([]int64, 2, 17),
	}
	h.levels[0] = int64(n)
	h.below[1] = int64(n)
	return h
}

// N returns the number of bins.
func (h *Hist) N() int { return h.n }

// Balls returns the number of balls placed so far.
func (h *Hist) Balls() int64 { return h.balls }

// MaxLoad returns the current maximum load.
func (h *Hist) MaxLoad() int { return int(h.max) }

// MinLoad returns the current minimum load.
func (h *Hist) MinLoad() int { return int(h.min) }

// Gap returns MaxLoad − MinLoad.
func (h *Hist) Gap() int { return int(h.max - h.min) }

// LevelCount returns how many bins currently hold exactly load ℓ.
func (h *Hist) LevelCount(l int) int64 {
	if l < 0 || l >= len(h.levels) {
		return 0
	}
	return h.levels[l]
}

// CountBelow returns the number of bins with load strictly less than
// x, in O(1).
func (h *Hist) CountBelow(x int) int64 {
	if x <= 0 {
		return 0
	}
	if x >= len(h.below) {
		return int64(h.n)
	}
	return h.below[x]
}

// LevelOfRank maps a rank k (0 ≤ k < n) in the by-level ordering of
// the bins to its load level: ranks [CountBelow(ℓ), CountBelow(ℓ+1))
// belong to level ℓ, exactly as Vector.BinAtRank orders bins. The scan
// runs from the maximum level downward, which is cheapest for the
// top-heavy histograms the acceptance-threshold protocols produce. It
// panics if k is out of range.
func (h *Hist) LevelOfRank(k int64) int {
	if k < 0 || k >= int64(h.n) {
		panic(fmt.Sprintf("loadvec: LevelOfRank(%d) outside [0,%d)", k, h.n))
	}
	for l := int(h.max); ; l-- {
		if k >= h.below[l] {
			return l
		}
	}
}

// IncrementLevel moves one bin from level ℓ to level ℓ+1 — the
// histogram image of placing a ball into a bin with load ℓ. It panics
// if no bin currently holds load ℓ.
func (h *Hist) IncrementLevel(l int) {
	if l < 0 || l >= len(h.levels) || h.levels[l] == 0 {
		panic(fmt.Sprintf("loadvec: IncrementLevel(%d) with no bin at that level", l))
	}
	h.balls++
	h.sumSq += int64(2*l) + 1

	h.levels[l]--
	if l+1 >= len(h.levels) {
		h.levels = append(h.levels, 0)
		h.below = append(h.below, int64(h.n))
	}
	h.levels[l+1]++
	h.below[l+1]--

	if int32(l+1) > h.max {
		h.max = int32(l + 1)
	}
	if int32(l) == h.min && h.levels[l] == 0 {
		m := h.min
		for h.levels[m] == 0 {
			m++
		}
		h.min = m
	}
}

// DecrementLevel moves one bin from level ℓ to level ℓ−1 — the
// histogram image of removing a ball from a bin with load ℓ. It is the
// removal half of the Hist API (IncrementLevel's inverse) for
// level-addressed consumers; the bin-addressed Session.Remove instead
// materializes a Vector, since a bin identity has no meaning in a
// histogram. It panics
// if ℓ < 1 or no bin currently holds load ℓ. Removals invalidate the
// monotonicity assumption behind the rank-hint cache (below entries no
// longer only decrease), which is safe because PlaceBelowBatch rebuilds
// the cache before every chunk it processes.
func (h *Hist) DecrementLevel(l int) {
	if l < 1 || l >= len(h.levels) || h.levels[l] == 0 {
		panic(fmt.Sprintf("loadvec: DecrementLevel(%d) with no bin at that level", l))
	}
	h.balls--
	h.sumSq -= int64(2*l) - 1

	h.levels[l]--
	h.levels[l-1]++
	h.below[l]++

	if int32(l-1) < h.min {
		h.min = int32(l - 1)
	}
	if int32(l) == h.max && h.levels[l] == 0 {
		m := h.max
		for m > 0 && h.levels[m] == 0 {
			m--
		}
		h.max = m
	}
}

// PlaceBelowBatch places count balls one at a time, each by the
// "sample bins u.a.r. until one has load < T" rejection process with a
// constant threshold T, and returns the total number of samples the
// naive loop would have consumed. It is the fused hot loop behind the
// fast engine's stage execution: per ball it needs only the cumulative
// below array (one read for the acceptance count, a short hint-guided
// scan for the accepted level, one decrement to move the bin up), the
// RNG draw is devirtualized when the backing generator is Xoshiro256,
// and the levels histogram and scalar aggregates are resynchronized
// once per batch. Per ball it consumes exactly the distribution of
// (samples, accepted bin level) of the naive loop: the literal
// Bernoulli-trial count when acceptance is likely, the exact Geometric
// sampler when it is rare. It panics if no bin is below T (where the
// naive loop would spin forever). A T larger than any reachable load
// (e.g. math.MaxInt32) turns the loop into the single-choice process.
func (h *Hist) PlaceBelowBatch(r *rng.Rand, count int64, T int) int64 {
	if count <= 0 {
		return 0
	}
	n := int64(h.n)
	un := uint64(h.n)
	below := h.below
	xo, fast := r.Source().(*rng.Xoshiro256)
	var total, sumLevels int64
	minL, maxL := int(h.min), int(h.max)

	// Rank→level lookups go through the quantized hint table: the
	// cached level is a lower bound (below entries only decrease), so
	// one upward scan — rarely more than a step or two — finishes the
	// lookup with a well-predicted branch. The table is rebuilt every
	// n/2 placements (the chunking below) to bound the staleness drift
	// at O(1) expected extra steps.
	rebuildEvery := int64(h.n/2 + 1)
	for done := int64(0); done < count; {
		h.rebuildRankHint()
		tab := h.rankHint
		shift := h.rankShift
		chunk := min(rebuildEvery, count-done)
		done += chunk

		for k := int64(0); k < chunk; k++ {
			tc := T
			if tc > maxL+1 {
				tc = maxL + 1
			}
			cb := below[tc]
			if cb <= 0 {
				panic(fmt.Sprintf("loadvec: PlaceBelowBatch with no bin below %d", T))
			}
			var rank int64
			if 4*cb >= n {
				for {
					total++
					var j int64
					if fast {
						// Lemire attempt with the generator step
						// inlined; the rare lo < n branch (probability
						// n/2⁶⁴) finishes out of line with the exact
						// threshold so the draw stays bias-free.
						hi, lo := bits.Mul64(xo.Uint64(), un)
						if lo < un {
							hi = rng.Uint64nXoshiroFinish(xo, un, hi, lo)
						}
						j = int64(hi)
					} else {
						j = int64(r.Uint64n(un))
					}
					if j < cb {
						rank = j
						break
					}
				}
			} else {
				total += r.Geometric(float64(cb) / float64(n))
				rank = int64(r.Uint64n(uint64(cb)))
			}

			// Map rank to its level: the l with below[l] <= rank < below[l+1].
			l := int(tab[(uint64(rank)>>shift)&(rankHintSize-1)])
			for rank >= below[l+1] {
				l++
			}
			sumLevels += int64(l)

			// Move one bin from level l to l+1.
			below[l+1]--
			if l+1 > maxL {
				maxL = l + 1
				if maxL+2 > len(below) {
					h.below = append(h.below, int64(h.n))
					below = h.below
				}
			}
			if l == minL && below[l+1] == below[l] {
				minL = l + 1
			}
		}
	}
	// Resynchronize the derived representation once per batch.
	h.min, h.max = int32(minL), int32(maxL)
	h.balls += count
	h.sumSq += 2*sumLevels + count
	if len(h.levels) < len(below)-1 {
		h.levels = append(h.levels, make([]int64, len(below)-1-len(h.levels))...)
	}
	for l := range h.levels {
		h.levels[l] = below[l+1] - below[l]
	}
	return total
}

// rebuildRankHint refreshes the quantized rank→level table from the
// current below array: entry q holds the exact level of rank
// q<<rankShift at rebuild time.
func (h *Hist) rebuildRankHint() {
	shift := uint(0)
	for (h.n-1)>>shift >= rankHintSize {
		shift++
	}
	blocks := (h.n-1)>>shift + 1
	if h.rankHint == nil {
		h.rankHint = new([rankHintSize]int32)
	}
	h.rankShift = shift
	l := 0
	for q := 0; q < blocks; q++ {
		rank := int64(q) << shift
		for rank >= h.below[l+1] {
			l++
		}
		h.rankHint[q] = int32(l)
	}
}

// SumSquares returns Σ loads² over all bins.
func (h *Hist) SumSquares() int64 { return h.sumSq }

// QuadraticPotential returns Ψ = Σℓ² − t²/n, exactly as Vector.
func (h *Hist) QuadraticPotential() float64 {
	t := float64(h.balls)
	return float64(h.sumSq) - t*t/float64(h.n)
}

// ExponentialPotential returns Φ with the given ε, exactly as Vector.
func (h *Hist) ExponentialPotential(eps float64) float64 {
	if eps <= 0 {
		panic("loadvec: ExponentialPotential with eps <= 0")
	}
	avg := float64(h.balls) / float64(h.n)
	log1pe := math.Log1p(eps)
	var sum float64
	for l := int(h.min); l <= int(h.max); l++ {
		c := h.levels[l]
		if c == 0 {
			continue
		}
		sum += float64(c) * math.Exp((avg+2-float64(l))*log1pe)
	}
	return sum
}

// Holes returns Σ max(0, capacity − ℓᵢ), exactly as Vector.
func (h *Hist) Holes(capacity int) int64 {
	var holes int64
	for l := int(h.min); l < capacity && l < len(h.levels); l++ {
		holes += h.levels[l] * int64(capacity-l)
	}
	return holes
}

// ToVector materializes a full per-bin Vector from the histogram by
// assigning the multiset of loads to bin identities uniformly at
// random (one Fisher–Yates permutation drawn from r). For any
// bin-relabeling-symmetric process this conditional is exactly the law
// of the bin-by-bin simulation given its histogram, so the returned
// Vector is distributed identically to one produced by running the
// naive engine.
func (h *Hist) ToVector(r *rng.Rand) *Vector {
	v := New(h.n)
	// Random permutation of the bins across positions: perm[p] is a
	// uniformly random ordering, and position p gets the p-th smallest
	// load.
	for p := 1; p < h.n; p++ {
		q := r.Intn(p + 1)
		v.perm[p] = v.perm[q]
		v.perm[q] = int32(p)
	}
	p := 0
	for l, c := range h.levels {
		for k := int64(0); k < c; k++ {
			v.loads[v.perm[p]] = int32(l)
			v.pos[v.perm[p]] = int32(p)
			p++
		}
	}
	v.levels = append(v.levels[:0], h.levels...)
	v.starts = v.starts[:0]
	for _, b := range h.below {
		v.starts = append(v.starts, int32(b))
	}
	v.balls = h.balls
	v.sumSq = h.sumSq
	v.min = h.min
	v.max = h.max
	return v
}

// Validate checks every internal invariant against recomputation,
// returning a descriptive error on the first mismatch.
func (h *Hist) Validate() error {
	var bins, balls, sumSq int64
	for l, c := range h.levels {
		if c < 0 {
			return fmt.Errorf("level %d has negative count %d", l, c)
		}
		bins += c
		balls += c * int64(l)
		sumSq += c * int64(l) * int64(l)
	}
	if bins != int64(h.n) {
		return fmt.Errorf("levels sum to %d bins, want %d", bins, h.n)
	}
	if balls != h.balls {
		return fmt.Errorf("balls: have %d want %d", h.balls, balls)
	}
	if sumSq != h.sumSq {
		return fmt.Errorf("sumSq: have %d want %d", h.sumSq, sumSq)
	}
	if len(h.below) != len(h.levels)+1 {
		return fmt.Errorf("below length %d want %d", len(h.below), len(h.levels)+1)
	}
	var cum int64
	for l, c := range h.levels {
		if h.below[l] != cum {
			return fmt.Errorf("below[%d] = %d want %d", l, h.below[l], cum)
		}
		cum += c
	}
	if h.below[len(h.below)-1] != int64(h.n) {
		return fmt.Errorf("below[last] = %d want %d", h.below[len(h.below)-1], h.n)
	}
	min, max := int32(-1), int32(0)
	for l, c := range h.levels {
		if c == 0 {
			continue
		}
		if min < 0 {
			min = int32(l)
		}
		max = int32(l)
	}
	if h.min != min {
		return fmt.Errorf("min: have %d want %d", h.min, min)
	}
	if h.max != max {
		return fmt.Errorf("max: have %d want %d", h.max, max)
	}
	return nil
}

// String returns a compact human-readable description.
func (h *Hist) String() string {
	return fmt.Sprintf("loadhist{n=%d t=%d min=%d max=%d psi=%.1f}",
		h.n, h.balls, h.min, h.max, h.QuadraticPotential())
}
