// Package loadvec implements the load-vector state shared by every
// allocation protocol, together with the paper's two potential
// functions (Section 2):
//
//	Ψ(ℓᵗ) = Σᵢ (ℓᵢ − t/n)²            (quadratic potential)
//	Φ(ℓᵗ) = Σᵢ (1+ε)^{t/n + 2 − ℓᵢ}   (exponential potential, ε = 1/200)
//
// The representation keeps, besides the per-bin loads, a level-count
// histogram (how many bins hold exactly ℓ balls), the exact sum of
// squared loads, and the current minimum and maximum. This makes
// Increment O(1) amortized, Ψ exact in O(1) via Σℓ² − t²/n, and Φ an
// O(#levels) evaluation in the shifted domain t/n − ℓ (which stays
// bounded, avoiding under/overflow even for very long runs).
//
// The vector additionally maintains a bins-by-level bucket index: a
// permutation of the bins ordered by non-decreasing load, with one
// contiguous bucket of positions per load level. Moving a bin between
// adjacent levels is a single swap with a bucket boundary, so the
// index costs O(1) per Increment/Decrement, and it turns two queries
// into O(1) operations that the histogram alone cannot support:
// CountBelow (a bucket-boundary lookup) and BinAtRank (position →
// bin). Together they let a caller draw a uniformly random bin among
// exactly the bins with load < T in a single bounded RNG draw — the
// primitive behind the fast allocation engine in internal/protocol.
package loadvec

import (
	"fmt"
	"math"
)

// DefaultEpsilon is the ε = 1/200 the paper fixes for the exponential
// potential function.
const DefaultEpsilon = 1.0 / 200

// Vector tracks the loads of n bins as balls are placed one at a time.
// Construct with New; the zero value is not usable.
type Vector struct {
	loads  []int32 // loads[i] = balls in bin i
	levels []int64 // levels[ℓ] = number of bins with load exactly ℓ
	balls  int64   // total balls placed (t)
	sumSq  int64   // Σ loads[i]²
	min    int32   // current minimum load
	max    int32   // current maximum load

	// Bucket index: perm is a permutation of the bins ordered by
	// non-decreasing load, pos is its inverse (pos[perm[p]] == p), and
	// starts[ℓ] is the number of bins with load < ℓ, so level ℓ's bins
	// occupy positions [starts[ℓ], starts[ℓ+1]). The order of bins
	// within one level bucket is arbitrary (it depends on the operation
	// history), but the partition of ranks by level is exact.
	// Invariant: len(starts) == len(levels)+1 and starts ends with n.
	perm   []int32
	pos    []int32
	starts []int32

	// last is the bin targeted by the most recent Increment (-1 before
	// the first one). Protocols report their placement through
	// Increment alone, so this is how the incremental stepping layer
	// (internal/protocol.Session) learns which bin a Place chose
	// without changing the Protocol interface.
	last int32
}

// New returns a Vector for n empty bins. It panics if n <= 0.
func New(n int) *Vector {
	if n <= 0 {
		panic("loadvec: New with n <= 0")
	}
	if int64(n) > math.MaxInt32 {
		panic("loadvec: New with n > MaxInt32")
	}
	v := &Vector{
		loads:  make([]int32, n),
		levels: make([]int64, 1, 16),
		perm:   make([]int32, n),
		pos:    make([]int32, n),
		starts: make([]int32, 2, 17),
		last:   -1,
	}
	v.levels[0] = int64(n)
	for i := range v.perm {
		v.perm[i] = int32(i)
		v.pos[i] = int32(i)
	}
	v.starts[1] = int32(n)
	return v
}

// N returns the number of bins.
func (v *Vector) N() int { return len(v.loads) }

// Balls returns the number of balls placed so far (the paper's t).
func (v *Vector) Balls() int64 { return v.balls }

// Load returns the load of bin i.
func (v *Vector) Load(i int) int { return int(v.loads[i]) }

// MaxLoad returns the current maximum load.
func (v *Vector) MaxLoad() int { return int(v.max) }

// MinLoad returns the current minimum load.
func (v *Vector) MinLoad() int { return int(v.min) }

// Gap returns MaxLoad − MinLoad, the smoothness measure of
// Corollary 3.5 and Lemma 4.2.
func (v *Vector) Gap() int { return int(v.max - v.min) }

// LevelCount returns how many bins currently hold exactly load ℓ.
func (v *Vector) LevelCount(l int) int64 {
	if l < 0 || l >= len(v.levels) {
		return 0
	}
	return v.levels[l]
}

// LastPlaced returns the bin targeted by the most recent Increment, or
// -1 if no ball has been placed yet.
func (v *Vector) LastPlaced() int { return int(v.last) }

// Increment places one ball into bin i.
func (v *Vector) Increment(i int) {
	l := v.loads[i]
	v.loads[i] = l + 1
	v.balls++
	v.sumSq += int64(2*l) + 1
	v.last = int32(i)

	v.levels[l]--
	if int(l+1) >= len(v.levels) {
		v.levels = append(v.levels, 0)
		v.starts = append(v.starts, int32(len(v.loads)))
	}
	v.levels[l+1]++

	// Bucket index: swap bin i to the last position of level ℓ's
	// bucket, then shift the ℓ/ℓ+1 boundary left over it.
	last := v.starts[l+1] - 1
	v.swapPositions(v.pos[i], last)
	v.starts[l+1] = last

	if l+1 > v.max {
		v.max = l + 1
	}
	if l == v.min && v.levels[l] == 0 {
		// The last bin at the minimum level moved up.
		m := v.min
		for v.levels[m] == 0 {
			m++
		}
		v.min = m
	}
}

// swapPositions exchanges the bins at permutation positions p and q.
func (v *Vector) swapPositions(p, q int32) {
	if p == q {
		return
	}
	bp, bq := v.perm[p], v.perm[q]
	v.perm[p], v.perm[q] = bq, bp
	v.pos[bp], v.pos[bq] = q, p
}

// Decrement removes one ball from bin i (used by reallocation
// protocols). It panics if bin i is empty.
func (v *Vector) Decrement(i int) {
	l := v.loads[i]
	if l == 0 {
		panic(fmt.Sprintf("loadvec: Decrement of empty bin %d", i))
	}
	v.loads[i] = l - 1
	v.balls--
	v.sumSq -= int64(2*l) - 1

	v.levels[l]--
	v.levels[l-1]++

	// Bucket index: swap bin i to the first position of level ℓ's
	// bucket, then shift the ℓ−1/ℓ boundary right over it.
	first := v.starts[l]
	v.swapPositions(v.pos[i], first)
	v.starts[l] = first + 1

	if l-1 < v.min {
		v.min = l - 1
	}
	if l == v.max && v.levels[l] == 0 {
		m := v.max
		for m > 0 && v.levels[m] == 0 {
			m--
		}
		v.max = m
	}
}

// SumSquares returns Σ loads[i]², exact in integer arithmetic.
func (v *Vector) SumSquares() int64 { return v.sumSq }

// QuadraticPotential returns Ψ(ℓᵗ) = Σᵢ (ℓᵢ − t/n)², evaluated exactly
// as Σℓ² − t²/n (the cross terms cancel because Σℓᵢ = t).
func (v *Vector) QuadraticPotential() float64 {
	t := float64(v.balls)
	return float64(v.sumSq) - t*t/float64(len(v.loads))
}

// ExponentialPotential returns Φ(ℓᵗ) = Σᵢ (1+ε)^{t/n + 2 − ℓᵢ} with the
// given ε (pass DefaultEpsilon for the paper's choice). The sum runs
// over occupied load levels only, so the cost is O(max − min + 1).
func (v *Vector) ExponentialPotential(eps float64) float64 {
	if eps <= 0 {
		panic("loadvec: ExponentialPotential with eps <= 0")
	}
	avg := float64(v.balls) / float64(len(v.loads))
	log1pe := math.Log1p(eps)
	var sum float64
	for l := int(v.min); l <= int(v.max); l++ {
		c := v.levels[l]
		if c == 0 {
			continue
		}
		sum += float64(c) * math.Exp((avg+2-float64(l))*log1pe)
	}
	return sum
}

// Holes returns Σᵢ max(0, capacity − ℓᵢ): the total number of "holes"
// relative to a per-bin capacity, the quantity the proof of Theorem 4.1
// tracks (there capacity = ϕ+1). Bins at or above capacity contribute
// nothing.
func (v *Vector) Holes(capacity int) int64 {
	var holes int64
	for l := int(v.min); l < capacity && l < len(v.levels); l++ {
		holes += v.levels[l] * int64(capacity-l)
	}
	return holes
}

// CountBelow returns the number of bins with load strictly less than
// x, in O(1) via the bucket index.
func (v *Vector) CountBelow(x int) int64 {
	if x <= 0 {
		return 0
	}
	if x >= len(v.starts) {
		return int64(len(v.loads))
	}
	return int64(v.starts[x])
}

// BinAtRank returns the bin at position k of the by-level permutation
// (0 ≤ k < n): bins appear in non-decreasing load order, so the first
// CountBelow(T) ranks are exactly the bins with load < T and the
// remaining ranks exactly those with load ≥ T. The order within one
// load level is arbitrary, which is immaterial for uniform sampling
// over either set. It panics if k is out of range.
func (v *Vector) BinAtRank(k int64) int {
	return int(v.perm[k])
}

// Loads returns a copy of the per-bin loads.
func (v *Vector) Loads() []int {
	out := make([]int, len(v.loads))
	for i, l := range v.loads {
		out[i] = int(l)
	}
	return out
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	out := &Vector{
		loads:  append([]int32(nil), v.loads...),
		levels: append([]int64(nil), v.levels...),
		balls:  v.balls,
		sumSq:  v.sumSq,
		min:    v.min,
		max:    v.max,
		perm:   append([]int32(nil), v.perm...),
		pos:    append([]int32(nil), v.pos...),
		starts: append([]int32(nil), v.starts...),
		last:   v.last,
	}
	return out
}

// Validate checks every internal invariant (level counts, sum of
// squares, min/max, ball count) against a recomputation from the raw
// loads, returning a descriptive error on the first mismatch. It is
// O(n) and intended for tests and debug builds.
func (v *Vector) Validate() error {
	var balls, sumSq int64
	levels := make([]int64, len(v.levels))
	min, max := int32(math.MaxInt32), int32(0)
	for i, l := range v.loads {
		if l < 0 {
			return fmt.Errorf("bin %d has negative load %d", i, l)
		}
		balls += int64(l)
		sumSq += int64(l) * int64(l)
		if int(l) >= len(levels) {
			return fmt.Errorf("bin %d load %d beyond level table (%d)", i, l, len(levels))
		}
		levels[l]++
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if balls != v.balls {
		return fmt.Errorf("balls: have %d want %d", v.balls, balls)
	}
	if sumSq != v.sumSq {
		return fmt.Errorf("sumSq: have %d want %d", v.sumSq, sumSq)
	}
	if v.min != min {
		return fmt.Errorf("min: have %d want %d", v.min, min)
	}
	if v.max != max {
		return fmt.Errorf("max: have %d want %d", v.max, max)
	}
	for l, c := range levels {
		if v.levels[l] != c {
			return fmt.Errorf("level %d: have %d want %d", l, v.levels[l], c)
		}
	}

	// Bucket index: perm/pos are inverse permutations, perm is sorted
	// by non-decreasing load, and starts[ℓ] counts bins with load < ℓ.
	if len(v.perm) != len(v.loads) || len(v.pos) != len(v.loads) {
		return fmt.Errorf("index sizes: perm %d pos %d want %d",
			len(v.perm), len(v.pos), len(v.loads))
	}
	if len(v.starts) != len(v.levels)+1 {
		return fmt.Errorf("starts length %d want %d", len(v.starts), len(v.levels)+1)
	}
	for p, bin := range v.perm {
		if bin < 0 || int(bin) >= len(v.loads) {
			return fmt.Errorf("perm[%d] = %d out of range", p, bin)
		}
		if v.pos[bin] != int32(p) {
			return fmt.Errorf("pos[%d] = %d, perm[%d] = %d not inverse",
				bin, v.pos[bin], p, bin)
		}
		if p > 0 && v.loads[bin] < v.loads[v.perm[p-1]] {
			return fmt.Errorf("perm not sorted by load at position %d", p)
		}
	}
	if v.starts[0] != 0 {
		return fmt.Errorf("starts[0] = %d want 0", v.starts[0])
	}
	if last := v.starts[len(v.starts)-1]; int(last) != len(v.loads) {
		return fmt.Errorf("starts[last] = %d want %d", last, len(v.loads))
	}
	var below int64
	for l, c := range levels {
		if int64(v.starts[l]) != below {
			return fmt.Errorf("starts[%d] = %d want %d", l, v.starts[l], below)
		}
		below += c
	}
	return nil
}

// String returns a compact human-readable description.
func (v *Vector) String() string {
	return fmt.Sprintf("loadvec{n=%d t=%d min=%d max=%d psi=%.1f}",
		len(v.loads), v.balls, v.min, v.max, v.QuadraticPotential())
}
