package loadvec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewEmpty(t *testing.T) {
	v := New(5)
	if v.N() != 5 || v.Balls() != 0 {
		t.Fatalf("fresh vector wrong: %v", v)
	}
	if v.MaxLoad() != 0 || v.MinLoad() != 0 || v.Gap() != 0 {
		t.Fatal("fresh vector loads not zero")
	}
	if v.LevelCount(0) != 5 {
		t.Fatalf("level 0 count = %d", v.LevelCount(0))
	}
	if v.QuadraticPotential() != 0 {
		t.Fatal("fresh Psi != 0")
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanics(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestIncrementBasics(t *testing.T) {
	v := New(3)
	v.Increment(0)
	v.Increment(0)
	v.Increment(1)
	if v.Load(0) != 2 || v.Load(1) != 1 || v.Load(2) != 0 {
		t.Fatalf("loads = %v", v.Loads())
	}
	if v.Balls() != 3 {
		t.Fatalf("balls = %d", v.Balls())
	}
	if v.MaxLoad() != 2 || v.MinLoad() != 0 || v.Gap() != 2 {
		t.Fatalf("max/min/gap = %d/%d/%d", v.MaxLoad(), v.MinLoad(), v.Gap())
	}
	if v.SumSquares() != 5 {
		t.Fatalf("sumSq = %d", v.SumSquares())
	}
	// Psi = 4 + 1 + 0 - 9/3 = 2.
	if !almost(v.QuadraticPotential(), 2, 1e-12) {
		t.Fatalf("Psi = %v", v.QuadraticPotential())
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMinTracksUp(t *testing.T) {
	v := New(2)
	v.Increment(0)
	if v.MinLoad() != 0 {
		t.Fatal("min should still be 0")
	}
	v.Increment(1)
	if v.MinLoad() != 1 {
		t.Fatal("min should rise to 1 once all bins reach 1")
	}
}

func TestDecrement(t *testing.T) {
	v := New(3)
	v.Increment(0)
	v.Increment(0)
	v.Increment(1)
	v.Decrement(0)
	if v.Load(0) != 1 || v.Balls() != 2 {
		t.Fatalf("after decrement: loads %v balls %d", v.Loads(), v.Balls())
	}
	if v.MaxLoad() != 1 {
		t.Fatalf("max should drop to 1, got %d", v.MaxLoad())
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecrementPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Decrement of empty bin did not panic")
		}
	}()
	New(2).Decrement(0)
}

func TestPotentialAgainstBruteForce(t *testing.T) {
	// Property: after any random sequence of increments/decrements the
	// maintained Psi, Phi, min, max agree with brute-force recomputes.
	f := func(seed uint64, opsRaw uint16) bool {
		r := rng.New(seed)
		n := 2 + int(seed%17)
		v := New(n)
		ops := int(opsRaw % 2000)
		for i := 0; i < ops; i++ {
			if v.Balls() > 0 && r.Intn(10) == 0 {
				// Occasionally remove from a non-empty bin.
				for {
					j := r.Intn(n)
					if v.Load(j) > 0 {
						v.Decrement(j)
						break
					}
				}
			} else {
				v.Increment(r.Intn(n))
			}
		}
		if err := v.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		// Brute-force Psi.
		tb := float64(v.Balls())
		avg := tb / float64(n)
		var psi, phi float64
		for i := 0; i < n; i++ {
			d := float64(v.Load(i)) - avg
			psi += d * d
			phi += math.Pow(1+DefaultEpsilon, avg+2-float64(v.Load(i)))
		}
		if !almost(psi, v.QuadraticPotential(), 1e-6*(1+psi)) {
			t.Logf("psi: brute %v maintained %v", psi, v.QuadraticPotential())
			return false
		}
		if !almost(phi, v.ExponentialPotential(DefaultEpsilon), 1e-6*(1+phi)) {
			t.Logf("phi: brute %v maintained %v", phi, v.ExponentialPotential(DefaultEpsilon))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialPotentialUniform(t *testing.T) {
	// Perfectly balanced load ℓ = t/n gives Phi = n·(1+eps)².
	v := New(10)
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			v.Increment(i)
		}
	}
	want := 10 * math.Pow(1+DefaultEpsilon, 2)
	if got := v.ExponentialPotential(DefaultEpsilon); !almost(got, want, 1e-9) {
		t.Fatalf("Phi = %v want %v", got, want)
	}
}

func TestExponentialPotentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("eps=0 did not panic")
		}
	}()
	New(1).ExponentialPotential(0)
}

func TestPsiOfPointMass(t *testing.T) {
	// All t balls in one bin of n: Psi = (t - t/n)² + (n-1)(t/n)²
	n, tb := 4, 8
	v := New(n)
	for i := 0; i < tb; i++ {
		v.Increment(0)
	}
	avg := float64(tb) / float64(n)
	want := (float64(tb)-avg)*(float64(tb)-avg) + float64(n-1)*avg*avg
	if got := v.QuadraticPotential(); !almost(got, want, 1e-9) {
		t.Fatalf("Psi = %v want %v", got, want)
	}
}

func TestHoles(t *testing.T) {
	v := New(4)
	// loads: 0,1,2,3
	v.Increment(1)
	v.Increment(2)
	v.Increment(2)
	for i := 0; i < 3; i++ {
		v.Increment(3)
	}
	// capacity 3: holes = 3 + 2 + 1 + 0 = 6
	if got := v.Holes(3); got != 6 {
		t.Fatalf("Holes(3) = %d want 6", got)
	}
	// capacity 1: holes = 1 (only the empty bin)
	if got := v.Holes(1); got != 1 {
		t.Fatalf("Holes(1) = %d want 1", got)
	}
	if got := v.Holes(0); got != 0 {
		t.Fatalf("Holes(0) = %d want 0", got)
	}
}

func TestHolesIdentity(t *testing.T) {
	// Property: Holes(cap) == Σ max(0, cap − ℓᵢ) by brute force.
	f := func(seed uint64, capRaw uint8) bool {
		r := rng.New(seed)
		n := 2 + int(seed%9)
		v := New(n)
		for i := 0; i < 5*n; i++ {
			v.Increment(r.Intn(n))
		}
		capacity := int(capRaw % 12)
		var want int64
		for i := 0; i < n; i++ {
			if h := capacity - v.Load(i); h > 0 {
				want += int64(h)
			}
		}
		return v.Holes(capacity) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountBelow(t *testing.T) {
	v := New(4)
	v.Increment(0) // loads 1,0,0,0
	if got := v.CountBelow(1); got != 3 {
		t.Fatalf("CountBelow(1) = %d", got)
	}
	if got := v.CountBelow(2); got != 4 {
		t.Fatalf("CountBelow(2) = %d", got)
	}
	if got := v.CountBelow(0); got != 0 {
		t.Fatalf("CountBelow(0) = %d", got)
	}
}

func TestClone(t *testing.T) {
	v := New(3)
	v.Increment(0)
	v.Increment(1)
	c := v.Clone()
	c.Increment(2)
	if v.Balls() != 2 || c.Balls() != 3 {
		t.Fatal("clone not independent")
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLevelCountOutOfRange(t *testing.T) {
	v := New(2)
	if v.LevelCount(-1) != 0 || v.LevelCount(99) != 0 {
		t.Fatal("out-of-range level counts should be 0")
	}
}

func TestStringer(t *testing.T) {
	v := New(2)
	v.Increment(0)
	s := v.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkIncrement(b *testing.B) {
	v := New(1024)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Increment(r.Intn(1024))
	}
}

func BenchmarkExponentialPotential(b *testing.B) {
	v := New(1024)
	r := rng.New(1)
	for i := 0; i < 100*1024; i++ {
		v.Increment(r.Intn(1024))
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += v.ExponentialPotential(DefaultEpsilon)
	}
	_ = sink
}
