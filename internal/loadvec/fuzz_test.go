package loadvec

import "testing"

// FuzzVectorOps drives a Vector with an arbitrary operation tape and
// checks every maintained invariant against recomputation. Byte
// semantics: low 6 bits select the bin (mod n), top bit selects
// increment vs decrement (decrements of empty bins are skipped).
func FuzzVectorOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0x80})
	f.Add([]byte{0, 0, 0, 0x80, 0x80})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const n = 17
		v := New(n)
		for _, op := range tape {
			bin := int(op&0x3F) % n
			if op&0x80 != 0 {
				if v.Load(bin) > 0 {
					v.Decrement(bin)
				}
				continue
			}
			v.Increment(bin)
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("invariants broken after %d ops: %v", len(tape), err)
		}
		// The clone must be equal and independent.
		c := v.Clone()
		if err := c.Validate(); err != nil {
			t.Fatalf("clone invalid: %v", err)
		}
		c.Increment(0)
		if c.Balls() != v.Balls()+1 {
			t.Fatal("clone not independent")
		}
	})
}
