package loadvec

import (
	"testing"

	"repro/internal/rng"
)

// FuzzVectorOps drives a Vector with an arbitrary operation tape and
// checks every maintained invariant against recomputation. Byte
// semantics: low 6 bits select the bin (mod n), top bit selects
// increment vs decrement (decrements of empty bins are skipped).
func FuzzVectorOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0x80})
	f.Add([]byte{0, 0, 0, 0x80, 0x80})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const n = 17
		v := New(n)
		for _, op := range tape {
			bin := int(op&0x3F) % n
			if op&0x80 != 0 {
				if v.Load(bin) > 0 {
					v.Decrement(bin)
				}
				continue
			}
			v.Increment(bin)
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("invariants broken after %d ops: %v", len(tape), err)
		}
		// The clone must be equal and independent.
		c := v.Clone()
		if err := c.Validate(); err != nil {
			t.Fatalf("clone invalid: %v", err)
		}
		c.Increment(0)
		if c.Balls() != v.Balls()+1 {
			t.Fatal("clone not independent")
		}
	})
}

// FuzzBucketIndex drives a Vector with the same operation tape as
// FuzzVectorOps and checks the bucket-index query contract directly:
// for every threshold T, the ranks [0, CountBelow(T)) enumerate
// exactly the bins with load < T, and the remaining ranks exactly
// those with load >= T — the partition the fast allocation engine's
// uniform draws rely on.
func FuzzBucketIndex(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0x80})
	f.Add([]byte{5, 5, 5, 5, 5, 0x85, 0x85})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const n = 13
		v := New(n)
		for _, op := range tape {
			bin := int(op&0x3F) % n
			if op&0x80 != 0 {
				if v.Load(bin) > 0 {
					v.Decrement(bin)
				}
				continue
			}
			v.Increment(bin)
		}
		for T := 0; T <= v.MaxLoad()+2; T++ {
			cb := v.CountBelow(T)
			var want int64
			for i := 0; i < n; i++ {
				if v.Load(i) < T {
					want++
				}
			}
			if cb != want {
				t.Fatalf("CountBelow(%d) = %d want %d", T, cb, want)
			}
			seen := make(map[int]bool, n)
			for k := int64(0); k < int64(n); k++ {
				bin := v.BinAtRank(k)
				if seen[bin] {
					t.Fatalf("rank %d repeats bin %d", k, bin)
				}
				seen[bin] = true
				if below := k < cb; below != (v.Load(bin) < T) {
					t.Fatalf("rank %d bin %d load %d on wrong side of T=%d (CountBelow=%d)",
						k, bin, v.Load(bin), T, cb)
				}
			}
		}
	})
}

// FuzzChurnHistMirrorsVector is the removal counterpart of the
// increment-only mirror fuzzer: it drives a Vector (Increment /
// Decrement, exercising the bucket-index maintenance) and a Hist
// (IncrementLevel / DecrementLevel) with the same tape, checks every
// shared aggregate after the churn, and then runs a PlaceBelowBatch
// burst — removals break the "below entries only decrease" monotonic
// assumption behind the rank-hint cache, and the batch must stay
// correct because it rebuilds the cache per chunk. Byte semantics as
// FuzzVectorOps: low 6 bits select the bin, top bit removes.
func FuzzChurnHistMirrorsVector(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x80, 0x81, 2, 2, 0x82})
	f.Add([]byte{5, 5, 5, 0x85, 0x85, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const n = 11
		v := New(n)
		h := NewHist(n)
		for _, op := range tape {
			bin := int(op&0x3F) % n
			l := v.Load(bin)
			if op&0x80 != 0 {
				if l == 0 {
					continue
				}
				v.Decrement(bin)
				h.DecrementLevel(l)
			} else {
				v.Increment(bin)
				h.IncrementLevel(l)
			}
			if err := v.Validate(); err != nil {
				t.Fatalf("vector invalid: %v", err)
			}
			if err := h.Validate(); err != nil {
				t.Fatalf("hist invalid: %v", err)
			}
		}
		checkHistMirrorsVector(t, h, v)

		// Post-churn batch: the fused hot loop must keep exact counts
		// on a histogram whose below array has moved both ways.
		r := rng.New(7)
		T := h.MaxLoad() + 1
		before := h.Balls()
		count := min(int64(3*n), h.Holes(T)) // balls that fit below T
		if count > 0 {
			h.PlaceBelowBatch(r, count, T)
			if h.Balls() != before+count {
				t.Fatalf("batch placed %d balls, want %d", h.Balls()-before, count)
			}
			if err := h.Validate(); err != nil {
				t.Fatalf("hist invalid after post-churn batch: %v", err)
			}
		}
	})
}
