package ballsbins

import (
	"context"

	"repro/internal/core"
	"repro/internal/loadvec"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Spec selects an allocation protocol. Construct with Adaptive,
// Threshold, Greedy, etc. The zero value is invalid.
type Spec struct {
	factory protocol.Factory
}

// Name returns the protocol's identifier, e.g. "adaptive" or
// "greedy[2]".
func (s Spec) Name() string {
	s.mustBeValid()
	return s.factory().Name()
}

func (s Spec) mustBeValid() {
	if s.factory == nil {
		panic("ballsbins: zero Spec; use a constructor such as Adaptive()")
	}
}

// newSpec wraps a factory in a Spec, invoking it once eagerly so that
// invalid parameters panic at construction time (in the constructor
// the user called) rather than at first use inside a worker.
func newSpec(f protocol.Factory) Spec {
	f()
	return Spec{factory: f}
}

// Engine selects the placement implementation.
//
// EngineFast (the default) makes each ball's placement O(1) amortized:
// the number of rejected samples is drawn from the Geometric
// distribution implied by the load histogram (bit-exact Bernoulli
// counting when acceptance is likely, float64 inversion — error
// O(2⁻⁵³) — when it is rare) and the accepted bin from the bucket of
// acceptable bins, so every reported statistic keeps the same
// distribution as the literal rejection loop.
// EngineNaive runs that literal loop — one RNG draw and one load probe
// per sample — and serves as the reference oracle.
//
// The engines consume randomness differently, so the same seed gives
// different (identically distributed) runs on each engine.
type Engine = protocol.Engine

const (
	// EngineFast is the histogram-mode O(1) placement path (default).
	EngineFast = protocol.EngineFast
	// EngineNaive is the literal rejection-sampling loop.
	EngineNaive = protocol.EngineNaive
)

// Adaptive returns the paper's adaptive protocol: ball i accepts a bin
// with load < i/n + 1. Max load ⌈m/n⌉+1, O(m) expected time, smooth
// final distribution; m need not be known in advance.
func Adaptive() Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewAdaptive() })
}

// Threshold returns the Czumaj–Stemann protocol: every ball accepts a
// bin with load < m/n + 1. Max load ⌈m/n⌉+1 and allocation time
// m + O(m^{3/4}·n^{1/4}), but a rough final distribution.
func Threshold() Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewThreshold() })
}

// AdaptiveNoSlack returns the ablation with acceptance bound i/n
// (without the +1): Θ(m·log n) allocation time.
func AdaptiveNoSlack() Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewAdaptiveNoSlack() })
}

// SingleChoice returns the classical one-random-bin process.
func SingleChoice() Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewSingleChoice() })
}

// Greedy returns greedy[d]: best of d random bins (Azar et al.).
// It panics if d < 1.
func Greedy(d int) Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewGreedy(d) })
}

// Left returns left[d]: one bin from each of d groups with
// Always-Go-Left tie breaking (Vöcking). It panics if d < 2.
func Left(d int) Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewLeft(d) })
}

// Memory returns the (d,k)-memory protocol of Mitzenmacher, Prabhakar
// and Shah. It panics if d < 1 or k < 0.
func Memory(d, k int) Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewMemory(d, k) })
}

// FixedThreshold returns the protocol accepting bins with load
// strictly below bound. It panics if bound < 1.
func FixedThreshold(bound int) Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewFixedThreshold(bound) })
}

// OnePlusBeta returns the (1+β)-choice process of Peres, Talwar and
// Wieder: each ball uses two choices with probability beta, one
// otherwise. Gap Θ(log n/β) independent of m. It panics unless
// 0 <= beta <= 1.
func OnePlusBeta(beta float64) Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewOnePlusBeta(beta) })
}

// StaleAdaptive returns the adaptive protocol with a ball counter that
// is synchronized only every syncEvery balls (must be <= n at run
// time). Stage-aligned synchronization (syncEvery = n) reproduces
// Adaptive exactly; see the protocol documentation. It panics if
// syncEvery < 1.
func StaleAdaptive(syncEvery int64) Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewStaleAdaptive(syncEvery) })
}

// LaggedAdaptive returns the adaptive protocol with a counter running
// lag balls behind the truth (must be <= n at run time). lag = n is
// exactly the AdaptiveNoSlack ablation from ball n+1 onward. It panics
// if lag < 0.
func LaggedAdaptive(lag int64) Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewLaggedAdaptive(lag) })
}

// BoundedRetry returns the threshold protocol with at most `retries`
// samples per ball, falling back to the least loaded sample — the
// per-ball-time vs max-load tradeoff family of Czumaj–Stemann.
// retries = 1 is single-choice; retries → ∞ recovers Threshold. It
// panics if retries < 1.
func BoundedRetry(retries int) Spec {
	return newSpec(func() protocol.Protocol { return protocol.NewBoundedRetry(retries) })
}

// Result summarizes one allocation run.
type Result struct {
	// Samples is the allocation time: the total number of random bin
	// choices (the quantity the paper's Figure 3(a) plots).
	Samples int64
	// SamplesPerBall is Samples/m.
	SamplesPerBall float64
	// MaxLoad, MinLoad and Gap describe the final load distribution.
	MaxLoad, MinLoad, Gap int
	// Psi is the quadratic potential Σ(ℓᵢ−m/n)² (Figure 3(b)).
	Psi float64
	// Phi is the exponential potential with the paper's ε = 1/200.
	Phi float64
}

// Snapshot is a mid-run observation delivered by WithSnapshots.
type Snapshot struct {
	Ball    int64 // 1-based index of the ball just placed
	Samples int64 // cumulative random choices
	MaxLoad int
	Gap     int
	Psi     float64
}

type options struct {
	seed     uint64
	engine   Engine
	horizon  int64
	snapEach int64
	snapFn   func(Snapshot)
}

// Option configures Run, Replicates and New.
type Option func(*options)

// WithSeed fixes the master random seed (default 1). Identical seeds
// reproduce runs exactly.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithEngine selects the placement engine (default EngineFast). Use
// EngineNaive to run the literal rejection-sampling loop, e.g. as the
// reference when validating the fast path.
func WithEngine(e Engine) Option {
	return func(o *options) { o.engine = e }
}

// WithHorizon declares the expected total number of balls to an
// Allocator constructed with New. Protocols whose acceptance rule
// depends on m — Threshold and BoundedRetry, whose bound is m/n + 1 —
// require it; the online protocols ignore it. Placing more than the
// horizon with such a bounded rule eventually leaves no acceptable
// bin: the fast engine panics at that point, while the naive engine's
// literal rejection loop never returns — stay within the declared
// horizon. Run and Replicates ignore this option (they know m). It
// panics if m < 0.
func WithHorizon(m int64) Option {
	if m < 0 {
		panic("ballsbins: WithHorizon with m < 0")
	}
	return func(o *options) { o.horizon = m }
}

// WithSnapshots invokes fn after every `every` balls (and after the
// first ball) with a summary of the run so far. It panics if every <=
// 0 or fn is nil. Replicates ignores snapshots; New rejects this
// option (poll the Allocator's Snapshot method instead).
func WithSnapshots(every int64, fn func(Snapshot)) Option {
	if every <= 0 {
		panic("ballsbins: WithSnapshots with every <= 0")
	}
	if fn == nil {
		panic("ballsbins: WithSnapshots with nil callback")
	}
	return func(o *options) { o.snapEach = every; o.snapFn = fn }
}

func buildOptions(opts []Option) options {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Run places m balls into n bins with the chosen protocol and returns
// the measured result. The fast engine is used unless WithEngine
// selects the naive loop. It panics if n <= 0, m < 0, or s is the zero
// Spec.
func Run(s Spec, n int, m int64, opts ...Option) Result {
	s.mustBeValid()
	o := buildOptions(opts)
	var obs protocol.Observer
	if o.snapFn != nil {
		var cum int64
		obs = func(ball, samples int64, v *loadvec.Vector) {
			cum += samples
			if ball%o.snapEach != 0 && ball != 1 {
				return
			}
			o.snapFn(Snapshot{
				Ball:    ball,
				Samples: cum,
				MaxLoad: v.MaxLoad(),
				Gap:     v.Gap(),
				Psi:     v.QuadraticPotential(),
			})
		}
	}
	out := protocol.RunWithObserverEngine(s.factory(), n, m, rng.New(o.seed), o.engine, obs)
	return toResult(core.Measure(out))
}

func toResult(m core.Metrics) Result {
	return Result{
		Samples:        m.Samples,
		SamplesPerBall: m.SamplesPerBall,
		MaxLoad:        m.MaxLoad,
		MinLoad:        m.MinLoad,
		Gap:            m.Gap,
		Psi:            m.Psi,
		Phi:            m.Phi,
	}
}

// Stat is a per-metric summary across replicates.
type Stat struct {
	Mean, Std, Min, Max float64
	// CI95 is the half-width of the ~95% confidence interval of Mean.
	CI95 float64
}

func toStat(w stats.Welford) Stat {
	return Stat{Mean: w.Mean(), Std: w.Std(), Min: w.Min(), Max: w.Max(), CI95: w.CI95()}
}

// Summary aggregates a replicated experiment, one Stat per metric.
type Summary struct {
	Protocol string
	N        int
	M        int64
	Reps     int

	Time        Stat // allocation time (samples)
	TimePerBall Stat
	MaxLoad     Stat
	Gap         Stat
	Psi         Stat
	Phi         Stat
}

// Replicates runs `reps` independent replicates (the paper uses 100)
// across a worker pool and returns aggregate statistics. Replicate
// seeds derive deterministically from the master seed, so results are
// reproducible and independent of parallelism. The context cancels
// outstanding work.
func Replicates(ctx context.Context, s Spec, n int, m int64, reps int, opts ...Option) (Summary, error) {
	s.mustBeValid()
	o := buildOptions(opts)
	agg, err := sim.Run(ctx, sim.Spec{
		Factory: s.factory,
		N:       n,
		M:       m,
		Reps:    reps,
		Seed:    o.seed,
		Engine:  o.engine,
	}, 0)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Protocol:    s.Name(),
		N:           n,
		M:           m,
		Reps:        reps,
		Time:        toStat(agg.Time),
		TimePerBall: toStat(agg.TimePerBall),
		MaxLoad:     toStat(agg.MaxLoad),
		Gap:         toStat(agg.Gap),
		Psi:         toStat(agg.Psi),
		Phi:         toStat(agg.Phi),
	}, nil
}

// MaxLoadGuarantee returns the deterministic bound ⌈m/n⌉+1 that the
// adaptive and threshold protocols never exceed.
func MaxLoadGuarantee(n int, m int64) int64 {
	return protocol.MaxLoadBound(n, m)
}
