package ballsbins_test

// Benchmarks for the online Allocator API: steady-state single-ball
// placement and place+remove churn. cmd/bbbench runs the same
// workloads standalone and records ns/op to BENCH_<date>.json next to
// the engine speedups.

import (
	"testing"

	ballsbins "repro"
)

func allocatorBenchSpecs() []struct {
	name string
	spec ballsbins.Spec
} {
	return []struct {
		name string
		spec ballsbins.Spec
	}{
		{"adaptive", ballsbins.Adaptive()},
		{"greedy2", ballsbins.Greedy(2)},
		{"single", ballsbins.SingleChoice()},
	}
}

// BenchmarkAllocatorPlace measures steady-state Place on a warm
// allocator: the per-arrival cost a live dispatcher pays, including
// the bucket-index maintenance and the O(1) fast path where the
// protocol supports it.
func BenchmarkAllocatorPlace(b *testing.B) {
	const n = 100_000
	for _, tc := range allocatorBenchSpecs() {
		b.Run(tc.name, func(b *testing.B) {
			a := ballsbins.New(tc.spec, n, ballsbins.WithSeed(1))
			a.PlaceBatch(8 * n) // warm to ~8 balls/bin
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Place()
			}
		})
	}
}

// BenchmarkAllocatorChurn measures a steady-state place+remove cycle:
// every iteration admits one ball and retires the oldest live one, so
// the load level stays at ~8 balls/bin while the allocator keeps
// serving — the live-traffic regime.
func BenchmarkAllocatorChurn(b *testing.B) {
	const n = 100_000
	for _, tc := range allocatorBenchSpecs() {
		b.Run(tc.name, func(b *testing.B) {
			a := ballsbins.New(tc.spec, n, ballsbins.WithSeed(1))
			fifo := make([]int, 0, 8*n+b.N)
			for i := 0; i < 8*n; i++ {
				bin, _ := a.Place()
				fifo = append(fifo, bin)
			}
			head := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bin, _ := a.Place()
				fifo = append(fifo, bin)
				a.Remove(fifo[head])
				head++
			}
		})
	}
}

// BenchmarkShardedAllocatorPlace measures the concurrent scale-out
// path: parallel Place traffic over a sharded allocator.
func BenchmarkShardedAllocatorPlace(b *testing.B) {
	const n, shards = 100_000, 8
	sa := ballsbins.NewSharded(ballsbins.Adaptive(), n, shards, ballsbins.WithSeed(1))
	sa.PlaceBatch(8 * n)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sa.Place()
		}
	})
}
