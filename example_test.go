package ballsbins_test

import (
	"context"
	"fmt"

	ballsbins "repro"
)

// The basic entry point: one allocation run with the paper's adaptive
// protocol. With a fixed seed every number is reproducible.
func ExampleRun() {
	res := ballsbins.Run(ballsbins.Adaptive(), 1000, 100_000,
		ballsbins.WithSeed(2013))
	fmt.Printf("max load: %d (guarantee %d)\n",
		res.MaxLoad, ballsbins.MaxLoadGuarantee(1000, 100_000))
	fmt.Printf("gap: %d\n", res.Gap)
	// Output:
	// max load: 101 (guarantee 101)
	// gap: 9
}

// The paper's headline comparison: at the same (n, m, seed), adaptive
// produces a smoother distribution than threshold.
func ExampleRun_smoothness() {
	a := ballsbins.Run(ballsbins.Adaptive(), 100, 10_000, ballsbins.WithSeed(7))
	t := ballsbins.Run(ballsbins.Threshold(), 100, 10_000, ballsbins.WithSeed(7))
	fmt.Println("adaptive smoother:", a.Psi < t.Psi)
	// Output:
	// adaptive smoother: true
}

// Replicated experiments reproduce the paper's averaged methodology.
func ExampleReplicates() {
	sum, err := ballsbins.Replicates(context.Background(),
		ballsbins.Adaptive(), 100, 1000, 10, ballsbins.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("protocol:", sum.Protocol)
	fmt.Println("replicates:", sum.Reps)
	fmt.Println("max load never exceeded guarantee:",
		sum.MaxLoad.Max <= float64(ballsbins.MaxLoadGuarantee(100, 1000)))
	// Output:
	// protocol: adaptive
	// replicates: 10
	// max load never exceeded guarantee: true
}

// The parallel engine reproduces the Lenzen–Wattenhofer guarantees:
// maximum load 2 for m = n balls.
func ExampleLenzenWattenhofer() {
	res, err := ballsbins.LenzenWattenhofer(1024, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("max load: %d, placed: %d\n", res.MaxLoad, res.Placed)
	// Output:
	// max load: 2, placed: 1024
}

// Self-balancing reallocation (the Table 1 baseline [6]) improves on
// its greedy[2] initial placement.
func ExampleSelfBalance() {
	res := ballsbins.SelfBalance(100, 1000, 3)
	fmt.Printf("max load: %d (was %d before balancing)\n",
		res.MaxLoad, res.InitialMaxLoad)
	// Output:
	// max load: 10 (was 12 before balancing)
}

// Weighted balls generalize the protocols; with constant weight 1 the
// weighted guarantee W/n + 2·wmax mirrors ⌈m/n⌉+1.
func ExampleRunWeighted() {
	res := ballsbins.RunWeighted(ballsbins.WeightedAdaptive(),
		100, 1000, ballsbins.ConstWeights(1), ballsbins.WithSeed(5))
	fmt.Printf("total weight: %.0f\n", res.TotalWeight)
	fmt.Println("within weighted guarantee:",
		res.MaxLoad <= res.TotalWeight/100+2*res.MaxWeight)
	// Output:
	// total weight: 1000
	// within weighted guarantee: true
}
