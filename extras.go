package ballsbins

import (
	"repro/internal/cuckoo"
	"repro/internal/dynamic"
	"repro/internal/parallel"
	"repro/internal/queueing"
	"repro/internal/realloc"
	"repro/internal/rng"
)

// ParallelResult summarizes a run of the round-synchronous parallel
// engine: the model of Adler et al. and Lenzen–Wattenhofer, where all
// balls are placed simultaneously over communication rounds and the
// figure of merit is rounds × messages × maximum load.
type ParallelResult struct {
	MaxLoad  int
	Rounds   int
	Messages int64 // requests + offers + commits
	Placed   int64
	Loads    []int
}

func toParallelResult(r parallel.Result) ParallelResult {
	return ParallelResult{
		MaxLoad:  r.MaxLoad,
		Rounds:   r.Rounds,
		Messages: r.Messages,
		Placed:   r.Placed,
		Loads:    r.Loads,
	}
}

// LenzenWattenhofer runs the symmetric adaptive parallel protocol of
// Lenzen and Wattenhofer for m = n balls: bin capacity 2, doubling
// contact schedule. It achieves maximum load 2 within log*(n)+O(1)
// rounds using O(n) messages.
func LenzenWattenhofer(n int, seed uint64) (ParallelResult, error) {
	r, err := parallel.Run(parallel.LenzenWattenhofer(n, seed))
	return toParallelResult(r), err
}

// AdlerCollision runs a collision-style parallel protocol after Adler
// et al.: d fixed candidate bins per ball, one grant per bin per
// round.
func AdlerCollision(n, d int, seed uint64) (ParallelResult, error) {
	r, err := parallel.Run(parallel.AdlerCollision(n, d, seed))
	return toParallelResult(r), err
}

// HeavyParallel runs the parallel analogue of the threshold protocol:
// m balls into n bins of capacity ⌈m/n⌉+1.
func HeavyParallel(n int, m int64, seed uint64) (ParallelResult, error) {
	r, err := parallel.Run(parallel.HeavyParallel(n, m, seed))
	return toParallelResult(r), err
}

// BalanceResult summarizes a self-balancing reallocation run
// (Czumaj–Riley–Scheideler style): greedy[2] initial placement, then
// local moves between each ball's two choices until a fixed point.
type BalanceResult struct {
	// MaxLoad is the final maximum load (⌈m/n⌉ or ⌈m/n⌉+1 w.h.p.).
	MaxLoad int
	// InitialMaxLoad is the maximum load right after greedy[2].
	InitialMaxLoad int
	// Moves counts reallocation steps — the cost the paper's protocols
	// avoid entirely.
	Moves int64
	// Passes is the number of sweeps until quiescence.
	Passes int
	// Psi is the final quadratic potential.
	Psi float64
	// Samples is the number of random bin choices (2m).
	Samples int64
}

// SelfBalance allocates m balls with two choices each and rebalances
// to a local optimum, reproducing the Table 1 baseline [6].
func SelfBalance(n int, m int64, seed uint64) BalanceResult {
	res := realloc.SelfBalance(n, m, rng.New(seed))
	return BalanceResult{
		MaxLoad:        res.Vector.MaxLoad(),
		InitialMaxLoad: res.InitialMaxLoad,
		Moves:          res.Moves,
		Passes:         res.Passes,
		Psi:            res.Vector.QuadraticPotential(),
		Samples:        res.InitialSamples,
	}
}

// CuckooConfig configures a cuckoo hash table; see NewCuckoo.
type CuckooConfig = cuckoo.Config

// CuckooTable is a d-ary bucketed cuckoo hash table, the related-work
// hashing scheme discussed in the paper's introduction. Displacement
// counts expose the reallocation cost that the paper's protocols avoid.
type CuckooTable = cuckoo.Table

// ErrCuckooFull is returned by CuckooTable.Insert when an item cannot
// be placed within the displacement budget and stash.
var ErrCuckooFull = cuckoo.ErrTableFull

// NewCuckoo returns an empty cuckoo hash table. It panics on invalid
// configuration (see CuckooConfig field docs).
func NewCuckoo(cfg CuckooConfig) *CuckooTable { return cuckoo.New(cfg) }

// DynamicConfig parameterizes a fully dynamic load-balancing
// simulation (arrivals, departures, optional pairwise balancing); see
// RunDynamic and the field documentation.
type DynamicConfig = dynamic.Config

// DynamicResult holds the steady-state statistics of a dynamic run.
type DynamicResult = dynamic.Result

// Arrival rules for DynamicConfig.
const (
	// ArriveSingle places arrivals into one uniform random bin.
	ArriveSingle = dynamic.ArriveSingle
	// ArriveGreedy2 places arrivals into the lesser loaded of two.
	ArriveGreedy2 = dynamic.ArriveGreedy2
	// ArriveAdaptive resamples until a bin is below average+1 — the
	// paper's acceptance rule in the dynamic setting.
	ArriveAdaptive = dynamic.ArriveAdaptive
)

// RunDynamic executes a time-stepped dynamic load-balancing simulation
// in the spirit of the paper's dynamic-reallocation related work [13]:
// Poisson arrivals per step, independent departures, and optional
// pairwise balancing between random partners. It panics on invalid
// configuration.
func RunDynamic(cfg DynamicConfig) DynamicResult { return dynamic.Run(cfg) }

// QueueConfig parameterizes a discrete-event dispatching simulation
// (the "supermarket model"); see RunQueue.
type QueueConfig = queueing.Config

// QueueResult holds sojourn-time statistics of a queueing run.
type QueueResult = queueing.Result

// Dispatch policies for QueueConfig.
const (
	// PickSingle sends each job to one uniform random server.
	PickSingle = queueing.PickSingle
	// PickGreedy2 sends each job to the shorter of two random queues.
	PickGreedy2 = queueing.PickGreedy2
	// PickAdaptive resamples until a queue is below jobs-in-system/n+1.
	PickAdaptive = queueing.PickAdaptive
)

// RunQueue executes a discrete-event simulation of a dispatching
// cluster with Poisson arrivals and exponential service times, using
// the allocation protocols as dispatch policies. It panics on invalid
// configuration (including an unstable offered load).
func RunQueue(cfg QueueConfig) QueueResult { return queueing.Run(cfg) }
