package ballsbins_test

// This file is the benchmark harness for the paper's evaluation: one
// benchmark per table/figure/theorem, each reporting the quantities the
// paper reports as custom testing.B metrics (choices/ball, maxload,
// psi, rounds, ...). Run with:
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record. Sizes are
// chosen so the full suite completes in minutes on a laptop; the cmd/
// tools run the same experiments at the paper's full scale.

import (
	"fmt"
	"math"
	"testing"

	ballsbins "repro"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/realloc"
	"repro/internal/rng"
)

// benchRun runs one replicate per iteration (fresh seed each time) and
// reports averaged domain metrics.
func benchRun(b *testing.B, spec ballsbins.Spec, n int, m int64) ballsbins.Result {
	b.Helper()
	var last ballsbins.Result
	var samples, maxLoad, gap, psi float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = ballsbins.Run(spec, n, m, ballsbins.WithSeed(uint64(i)+1))
		samples += float64(last.Samples)
		maxLoad += float64(last.MaxLoad)
		gap += float64(last.Gap)
		psi += last.Psi
	}
	inv := 1 / float64(b.N)
	b.ReportMetric(samples*inv/float64(m), "choices/ball")
	b.ReportMetric(maxLoad*inv, "maxload")
	b.ReportMetric(gap*inv, "gap")
	b.ReportMetric(psi*inv, "psi")
	return last
}

// BenchmarkTable1 regenerates the paper's Table 1: allocation time and
// maximum load for every algorithm, at light (phi=1) and heavy
// (phi=32) load. Predictions are attached as metrics where Table 1
// gives a closed form.
func BenchmarkTable1(b *testing.B) {
	const n = 10000
	rows := []struct {
		name string
		spec ballsbins.Spec
		pred func(m int64) float64 // predicted max load; NaN = none
	}{
		{"single", ballsbins.SingleChoice(),
			func(m int64) float64 { return core.PredictSingleChoiceMaxLoad(n, m) }},
		{"greedy2", ballsbins.Greedy(2),
			func(m int64) float64 { return core.PredictGreedyMaxLoad(n, m, 2) }},
		{"greedy3", ballsbins.Greedy(3),
			func(m int64) float64 { return core.PredictGreedyMaxLoad(n, m, 3) }},
		{"left2", ballsbins.Left(2),
			func(m int64) float64 { return core.PredictLeftMaxLoad(n, m, 2) }},
		{"memory11", ballsbins.Memory(1, 1),
			func(m int64) float64 {
				return float64(m)/n + core.PredictMemoryMaxLoad(n)
			}},
		{"threshold", ballsbins.Threshold(),
			func(m int64) float64 { return float64(core.PredictMaxLoadBound(n, m)) }},
		{"adaptive", ballsbins.Adaptive(),
			func(m int64) float64 { return float64(core.PredictMaxLoadBound(n, m)) }},
	}
	for _, phi := range []int64{1, 32} {
		m := phi * n
		for _, row := range rows {
			b.Run(fmt.Sprintf("%s/phi=%d", row.name, phi), func(b *testing.B) {
				benchRun(b, row.spec, n, m)
				b.ReportMetric(row.pred(m), "predicted-maxload")
			})
		}
	}
}

// BenchmarkTable1SelfBalancing covers Table 1's reallocation baseline
// [6]: max load ceil(m/n) at the cost of O(m)+n^{O(1)} moves.
func BenchmarkTable1SelfBalancing(b *testing.B) {
	const n = 4096
	for _, phi := range []int64{1, 8} {
		m := phi * n
		b.Run(fmt.Sprintf("phi=%d", phi), func(b *testing.B) {
			var moves, maxLoad float64
			for i := 0; i < b.N; i++ {
				res := realloc.SelfBalance(n, m, rng.New(uint64(i)+1))
				moves += float64(res.Moves)
				maxLoad += float64(res.Vector.MaxLoad())
			}
			b.ReportMetric(moves/float64(b.N)/float64(m), "moves/ball")
			b.ReportMetric(maxLoad/float64(b.N), "maxload")
			b.ReportMetric(float64(protocol.CeilDiv(m, n)), "perfect-maxload")
		})
	}
}

// BenchmarkFigure3a regenerates Figure 3(a): average allocation time
// of ADAPTIVE and THRESHOLD as m grows with n = 10^4 fixed. The
// paper's series: THRESHOLD converges to m (choices/ball -> 1),
// ADAPTIVE to a small constant times m.
func BenchmarkFigure3a(b *testing.B) {
	const n = 10000
	for _, m := range []int64{200000, 400000, 600000, 800000, 1000000} {
		b.Run(fmt.Sprintf("adaptive/m=%d", m), func(b *testing.B) {
			benchRun(b, ballsbins.Adaptive(), n, m)
		})
		b.Run(fmt.Sprintf("threshold/m=%d", m), func(b *testing.B) {
			benchRun(b, ballsbins.Threshold(), n, m)
		})
	}
}

// BenchmarkFigure3b regenerates Figure 3(b): average quadratic
// potential of the final load distribution across the same sweep. The
// paper's series: ADAPTIVE converges to a value independent of m,
// THRESHOLD keeps growing.
func BenchmarkFigure3b(b *testing.B) {
	const n = 10000
	for _, m := range []int64{200000, 600000, 1000000} {
		b.Run(fmt.Sprintf("adaptive/m=%d", m), func(b *testing.B) {
			res := benchRun(b, ballsbins.Adaptive(), n, m)
			b.ReportMetric(res.Psi/float64(n), "psi/n")
		})
		b.Run(fmt.Sprintf("threshold/m=%d", m), func(b *testing.B) {
			res := benchRun(b, ballsbins.Threshold(), n, m)
			b.ReportMetric(res.Psi/float64(n), "psi/n")
		})
	}
}

// BenchmarkTheorem31AdaptiveLinearTime verifies E[time] = O(m): the
// choices/ball metric must stay bounded as phi = m/n grows.
func BenchmarkTheorem31AdaptiveLinearTime(b *testing.B) {
	const n = 10000
	for _, phi := range []int64{1, 8, 64} {
		b.Run(fmt.Sprintf("phi=%d", phi), func(b *testing.B) {
			benchRun(b, ballsbins.Adaptive(), n, phi*n)
		})
	}
}

// BenchmarkTheorem41ThresholdOverhead verifies time = m +
// O(m^{3/4}n^{1/4}): the reported normalized overhead
// (time-m)/(m^{3/4}n^{1/4}) must stay bounded as m grows.
func BenchmarkTheorem41ThresholdOverhead(b *testing.B) {
	const n = 10000
	for _, phi := range []int64{4, 16, 64} {
		m := phi * n
		b.Run(fmt.Sprintf("phi=%d", phi), func(b *testing.B) {
			var overhead float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := ballsbins.Run(ballsbins.Threshold(), n, m,
					ballsbins.WithSeed(uint64(i)+1))
				overhead += float64(res.Samples - m)
			}
			scale := math.Pow(float64(m), 0.75) * math.Pow(float64(n), 0.25)
			b.ReportMetric(overhead/float64(b.N)/scale, "overhead/m34n14")
		})
	}
}

// BenchmarkCorollary35Smoothness verifies adaptive's smoothness: gap
// normalized by log2(n) and psi normalized by n stay O(1) as n grows.
func BenchmarkCorollary35Smoothness(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		m := int64(32 * n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var gap, psi float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := ballsbins.Run(ballsbins.Adaptive(), n, m,
					ballsbins.WithSeed(uint64(i)+1))
				gap += float64(res.Gap)
				psi += res.Psi
			}
			b.ReportMetric(gap/float64(b.N)/math.Log2(float64(n)), "gap/log2n")
			b.ReportMetric(psi/float64(b.N)/float64(n), "psi/n")
		})
	}
}

// BenchmarkLemma42ThresholdRoughness verifies threshold's roughness at
// m = n²: psi normalized by n^{9/8} and gap normalized by n^{1/8} stay
// bounded AWAY FROM ZERO as n grows.
func BenchmarkLemma42ThresholdRoughness(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		m := int64(n) * int64(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var gap, psi float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := ballsbins.Run(ballsbins.Threshold(), n, m,
					ballsbins.WithSeed(uint64(i)+1))
				gap += float64(res.Gap)
				psi += res.Psi
			}
			b.ReportMetric(psi/float64(b.N)/math.Pow(float64(n), 9.0/8.0), "psi/n98")
			b.ReportMetric(gap/float64(b.N)/math.Pow(float64(n), 1.0/8.0), "gap/n18")
		})
	}
}

// BenchmarkAblationAdaptiveNoSlack quantifies the Section 2 remark:
// dropping the +1 slack costs a Theta(log n) factor. The reported
// ratio metric is (noslack time)/(adaptive time)/ln(n), which should
// be roughly constant across n.
func BenchmarkAblationAdaptiveNoSlack(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		m := int64(8 * n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var ratio float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				seed := uint64(i) + 1
				a := ballsbins.Run(ballsbins.Adaptive(), n, m, ballsbins.WithSeed(seed))
				ns := ballsbins.Run(ballsbins.AdaptiveNoSlack(), n, m, ballsbins.WithSeed(seed))
				ratio += float64(ns.Samples) / float64(a.Samples)
			}
			b.ReportMetric(ratio/float64(b.N), "noslack/adaptive")
			b.ReportMetric(ratio/float64(b.N)/math.Log(float64(n)), "ratio/lnN")
		})
	}
}

// BenchmarkParallelLenzenWattenhofer covers the parallel line the
// paper cites ([12] in Table 1's context): max load 2 in ~log* n
// rounds with O(n) messages.
func BenchmarkParallelLenzenWattenhofer(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rounds, messages, maxLoad float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ballsbins.LenzenWattenhofer(n, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Rounds)
				messages += float64(res.Messages)
				maxLoad += float64(res.MaxLoad)
			}
			inv := 1 / float64(b.N)
			b.ReportMetric(rounds*inv, "rounds")
			b.ReportMetric(messages*inv/float64(n), "messages/n")
			b.ReportMetric(maxLoad*inv, "maxload")
		})
	}
}

// BenchmarkEngineThroughput is the raw engineering number: how many
// balls per second the hot loop places (adaptive protocol, n = 10^4).
func BenchmarkEngineThroughput(b *testing.B) {
	const n = 10000
	spec := ballsbins.Adaptive()
	b.ReportAllocs()
	b.ResetTimer()
	// One run of b.N balls: per-op time is per-ball time.
	ballsbins.Run(spec, n, int64(b.N), ballsbins.WithSeed(1))
}

// BenchmarkFastEngine compares the naive rejection loop against the
// histogram-mode fast engine on Figure-3(a)-class workloads (adaptive
// and threshold, m = 100n) across n. The fast engine's advantage grows
// with n because the naive loop's working set (per-bin loads plus the
// bucket index) falls out of cache while the histogram stays
// L1-resident; see BENCH_*.json for a recorded grid. Cases at n >= 10^6
// are skipped in -short mode; per-op time divided by m gives ns/ball.
func BenchmarkFastEngine(b *testing.B) {
	protos := []struct {
		name string
		spec ballsbins.Spec
	}{
		{"adaptive", ballsbins.Adaptive()},
		{"threshold", ballsbins.Threshold()},
	}
	engines := []struct {
		name string
		e    ballsbins.Engine
	}{
		{"naive", ballsbins.EngineNaive},
		{"fast", ballsbins.EngineFast},
	}
	for _, n := range []int{100000, 1000000, 10000000} {
		m := 100 * int64(n)
		if n >= 10000000 {
			m = 20 * int64(n) // keep one naive op under a minute
		}
		for _, p := range protos {
			for _, eng := range engines {
				if n >= 1000000 && testing.Short() {
					continue
				}
				b.Run(fmt.Sprintf("%s/n=%d/%s", p.name, n, eng.name), func(b *testing.B) {
					b.ReportAllocs()
					var samples float64
					for i := 0; i < b.N; i++ {
						res := ballsbins.Run(p.spec, n, m, ballsbins.WithSeed(uint64(i)+1),
							ballsbins.WithEngine(eng.e))
						samples += float64(res.Samples)
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(m), "ns/ball")
					b.ReportMetric(samples/float64(b.N)/float64(m), "choices/ball")
				})
			}
		}
	}
}

// BenchmarkFastEngineLowAcceptance measures the regime the geometric
// rejection count was built for: a fixed threshold exactly at
// capacity, where the naive loop needs Θ(n) samples for the last balls
// while the fast engine stays O(1) per ball.
func BenchmarkFastEngineLowAcceptance(b *testing.B) {
	const n = 100000
	const bound = 8
	m := int64(n) * bound
	for _, eng := range []struct {
		name string
		e    ballsbins.Engine
	}{
		{"naive", ballsbins.EngineNaive},
		{"fast", ballsbins.EngineFast},
	} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ballsbins.Run(ballsbins.FixedThreshold(bound), n, m,
					ballsbins.WithSeed(uint64(i)+1), ballsbins.WithEngine(eng.e))
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(m), "ns/ball")
		})
	}
}

// --- Extension ablations (beyond the paper's evaluation) -------------

// BenchmarkExtensionOnePlusBeta sweeps the (1+β)-choice process: the
// gap metric shrinks like Θ(log n/β) as β grows while cost stays
// 1+β choices/ball — the cheap-smoothness tradeoff to compare with
// adaptive's.
func BenchmarkExtensionOnePlusBeta(b *testing.B) {
	const n = 4096
	m := int64(64 * n)
	for _, beta := range []float64{0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("beta=%.1f", beta), func(b *testing.B) {
			benchRun(b, ballsbins.OnePlusBeta(beta), n, m)
		})
	}
}

// BenchmarkExtensionStaleCounter quantifies adaptive's robustness to
// counter staleness: sync period up to one stage costs (almost)
// nothing; the lagged variant at a full stage degrades to the
// no-slack Θ(m log n) behaviour.
func BenchmarkExtensionStaleCounter(b *testing.B) {
	const n = 4096
	m := int64(16 * n)
	for _, spec := range []struct {
		name string
		s    ballsbins.Spec
	}{
		{"adaptive", ballsbins.Adaptive()},
		{"stale-sync=n/8", ballsbins.StaleAdaptive(n / 8)},
		{"stale-sync=n", ballsbins.StaleAdaptive(n)},
		{"lag=n(noslack)", ballsbins.LaggedAdaptive(n)},
	} {
		b.Run(spec.name, func(b *testing.B) {
			benchRun(b, spec.s, n, m)
		})
	}
}

// BenchmarkExtensionWeighted compares weight distributions at equal
// mean: heavy tails roughen the distribution but the weighted adaptive
// rule keeps max load below W/n + 2·wmax.
func BenchmarkExtensionWeighted(b *testing.B) {
	const n = 4096
	m := int64(16 * n)
	for _, w := range []struct {
		name string
		s    ballsbins.WeightSampler
	}{
		{"const", ballsbins.ConstWeights(1)},
		{"exp", ballsbins.ExpWeights(1)},
		{"pareto", ballsbins.ParetoWeights(1.2, 0.3, 30)},
	} {
		b.Run(w.name, func(b *testing.B) {
			var gap, psi, perBall float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := ballsbins.RunWeighted(ballsbins.WeightedAdaptive(), n, m, w.s,
					ballsbins.WithSeed(uint64(i)+1))
				gap += res.Gap
				psi += res.Psi
				perBall += res.SamplesPerBall
			}
			inv := 1 / float64(b.N)
			b.ReportMetric(gap*inv, "gap")
			b.ReportMetric(psi*inv/float64(n), "psi/n")
			b.ReportMetric(perBall*inv, "choices/ball")
		})
	}
}

// BenchmarkExtensionBatched sweeps the batch size of the b-batched
// arrival model: stale load information degrades greedy[2]'s max load
// toward single-choice as batches grow, while batched adaptive keeps
// its near-optimal max load at every batch size up to a stage.
func BenchmarkExtensionBatched(b *testing.B) {
	const n = 4096
	m := int64(16 * n)
	for _, batch := range []int64{1, n / 8, n} {
		b.Run(fmt.Sprintf("greedy2/b=%d", batch), func(b *testing.B) {
			var maxLoad float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := ballsbins.RunBatchedGreedy(n, m, batch, 2,
					ballsbins.WithSeed(uint64(i)+1))
				maxLoad += float64(res.MaxLoad)
			}
			b.ReportMetric(maxLoad/float64(b.N), "maxload")
		})
		b.Run(fmt.Sprintf("adaptive/b=%d", batch), func(b *testing.B) {
			var maxLoad, psi float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := ballsbins.RunBatchedAdaptive(n, m, batch,
					ballsbins.WithSeed(uint64(i)+1))
				maxLoad += float64(res.MaxLoad)
				psi += res.Psi
			}
			b.ReportMetric(maxLoad/float64(b.N), "maxload")
			b.ReportMetric(psi/float64(b.N)/float64(n), "psi/n")
		})
	}
}

// BenchmarkExtensionDynamic compares strategies in the fully dynamic
// regime (arrivals + departures): smart arrivals vs after-the-fact
// migration. Reported: steady-state gap and migrations per step.
func BenchmarkExtensionDynamic(b *testing.B) {
	base := ballsbins.DynamicConfig{
		N: 512, Steps: 200, ArrivalRate: 2, DepartureProb: 0.25,
	}
	for _, sc := range []struct {
		name string
		edit func(*ballsbins.DynamicConfig)
	}{
		{"single", func(c *ballsbins.DynamicConfig) { c.Arrival = ballsbins.ArriveSingle }},
		{"adaptive", func(c *ballsbins.DynamicConfig) { c.Arrival = ballsbins.ArriveAdaptive }},
		{"single+migration", func(c *ballsbins.DynamicConfig) {
			c.Arrival = ballsbins.ArriveSingle
			c.BalanceProb = 0.5
		}},
	} {
		b.Run(sc.name, func(b *testing.B) {
			var gap, migrations float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := base
				sc.edit(&cfg)
				cfg.Seed = uint64(i) + 1
				res := ballsbins.RunDynamic(cfg)
				gap += res.MeanGap
				migrations += float64(res.Migrations) / float64(cfg.Steps)
			}
			b.ReportMetric(gap/float64(b.N), "gap")
			b.ReportMetric(migrations/float64(b.N), "migrations/step")
		})
	}
}

// BenchmarkExtensionSupermarket runs the discrete-event queueing
// simulation at high load: p99 sojourn time and probes per job, per
// dispatch policy.
func BenchmarkExtensionSupermarket(b *testing.B) {
	for _, policy := range []struct {
		name string
		p    ballsbins.QueueConfig
	}{
		{"single", ballsbins.QueueConfig{Policy: ballsbins.PickSingle}},
		{"greedy2", ballsbins.QueueConfig{Policy: ballsbins.PickGreedy2}},
		{"adaptive", ballsbins.QueueConfig{Policy: ballsbins.PickAdaptive}},
	} {
		b.Run(policy.name, func(b *testing.B) {
			var p99, probes float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := policy.p
				cfg.N = 64
				cfg.ArrivalRate = 64 * 0.9
				cfg.ServiceRate = 1
				cfg.Jobs = 50000
				cfg.Seed = uint64(i) + 1
				res := ballsbins.RunQueue(cfg)
				p99 += res.P99Sojourn
				probes += res.ProbesPerJob
			}
			b.ReportMetric(p99/float64(b.N), "p99-sojourn")
			b.ReportMetric(probes/float64(b.N), "probes/job")
		})
	}
}

// BenchmarkExtensionBoundedRetry sweeps the per-ball retry cap of the
// capped threshold protocol: the Czumaj–Stemann tradeoff between
// maximum per-ball time (R), average time, and max load.
func BenchmarkExtensionBoundedRetry(b *testing.B) {
	const n = 4096
	m := int64(64 * n)
	for _, retries := range []int{1, 2, 4, 16} {
		b.Run(fmt.Sprintf("R=%d", retries), func(b *testing.B) {
			benchRun(b, ballsbins.BoundedRetry(retries), n, m)
		})
	}
}

// BenchmarkAblationGreedyTieBreak measures whether greedy[2]'s
// tie-breaking rule (first-sampled vs uniformly random) matters: it
// does not, which is why the paper can leave it unspecified.
func BenchmarkAblationGreedyTieBreak(b *testing.B) {
	const n = 8192
	m := int64(8 * n)
	b.Run("first", func(b *testing.B) {
		benchRun(b, ballsbins.Greedy(2), n, m)
	})
	b.Run("random", func(b *testing.B) {
		var maxLoad float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := protocol.Run(protocol.NewGreedyRandomTies(2), n, m,
				rng.New(uint64(i)+1))
			maxLoad += float64(out.Vector.MaxLoad())
		}
		b.ReportMetric(maxLoad/float64(b.N), "maxload")
	})
}
