package ballsbins

import (
	"testing"

	"repro/internal/queueing"
)

func TestRunDynamicFacade(t *testing.T) {
	res := RunDynamic(DynamicConfig{
		N: 64, Steps: 200, ArrivalRate: 2, DepartureProb: 0.25,
		Arrival: ArriveAdaptive, Seed: 3,
	})
	if res.Arrivals == 0 || res.MeanTasks <= 0 {
		t.Fatalf("dynamic run empty: %+v", res)
	}
	if res.Migrations != 0 {
		t.Fatal("no balancing configured but migrations counted")
	}
}

func TestRunQueueFacade(t *testing.T) {
	res := RunQueue(QueueConfig{
		N: 16, ArrivalRate: 16 * 0.8, ServiceRate: 1, Jobs: 20000,
		Policy: PickAdaptive, Seed: 5,
	})
	if res.Completed != 20000 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.MeanSojourn <= 1 {
		// Sojourn includes one service time (mean 1), so it must
		// exceed 1 under any queueing.
		t.Fatalf("mean sojourn %v implausible", res.MeanSojourn)
	}
	if res.ProbesPerJob < 1 {
		t.Fatalf("probes per job %v", res.ProbesPerJob)
	}
}

func TestQueuePoliciesOrdered(t *testing.T) {
	// The headline queueing fact at high load: two informed policies
	// beat blind dispatch on the p99 tail.
	base := QueueConfig{
		N: 32, ArrivalRate: 32 * 0.9, ServiceRate: 1, Jobs: 60000, Seed: 6,
	}
	run := func(policy queueing.Policy) QueueResult {
		cfg := base
		cfg.Policy = policy
		return RunQueue(cfg)
	}
	single := run(PickSingle)
	greedy := run(PickGreedy2)
	adaptive := run(PickAdaptive)
	if greedy.P99Sojourn >= single.P99Sojourn {
		t.Fatalf("greedy2 p99 %v not below single %v", greedy.P99Sojourn, single.P99Sojourn)
	}
	if adaptive.P99Sojourn >= single.P99Sojourn {
		t.Fatalf("adaptive p99 %v not below single %v", adaptive.P99Sojourn, single.P99Sojourn)
	}
	if adaptive.ProbesPerJob >= greedy.ProbesPerJob {
		t.Fatalf("adaptive probes %v not below greedy2's 2", adaptive.ProbesPerJob)
	}
}
