package ballsbins

import (
	"sync"
	"testing"

	"repro/internal/dist"
)

// allocSpecs enumerates every protocol Spec with parameters feasible
// for the n=64, m=640 equivalence grid (FixedThreshold capacity
// 64·16 ≥ 640, StaleAdaptive/LaggedAdaptive/BatchedAdaptive windows
// ≤ n).
func allocSpecs() []struct {
	name string
	spec Spec
} {
	return []struct {
		name string
		spec Spec
	}{
		{"adaptive", Adaptive()},
		{"threshold", Threshold()},
		{"adaptive-noslack", AdaptiveNoSlack()},
		{"single", SingleChoice()},
		{"greedy2", Greedy(2)},
		{"left2", Left(2)},
		{"memory11", Memory(1, 1)},
		{"fixed16", FixedThreshold(16)},
		{"oneplusbeta", OnePlusBeta(0.5)},
		{"stale8", StaleAdaptive(8)},
		{"lag4", LaggedAdaptive(4)},
		{"retry3", BoundedRetry(3)},
		{"batched-greedy", BatchedGreedy(16, 2)},
		{"batched-adaptive", BatchedAdaptive(16)},
	}
}

// TestAllocatorBallByBallMatchesRun is the core equivalence contract:
// an Allocator stepped one Place at a time reproduces Run's Result
// exactly — same seed, same engine, every protocol. For the fast
// engine this is the nontrivial half of the refactor: the per-ball
// bucket-index path must consume the random stream identically to the
// fused histogram batch path and select the same load levels.
func TestAllocatorBallByBallMatchesRun(t *testing.T) {
	const n, m = 64, 640
	for _, tc := range allocSpecs() {
		for _, e := range []Engine{EngineFast, EngineNaive} {
			want := Run(tc.spec, n, m, WithSeed(11), WithEngine(e))
			a := New(tc.spec, n, WithSeed(11), WithEngine(e), WithHorizon(m))
			for i := 0; i < m; i++ {
				bin, samples := a.Place()
				if bin < 0 || bin >= n {
					t.Fatalf("%s/%v: Place returned bin %d", tc.name, e, bin)
				}
				if samples < 1 {
					t.Fatalf("%s/%v: Place reported %d samples", tc.name, e, samples)
				}
			}
			if got := a.Metrics(); got != want {
				t.Errorf("%s/%v: ball-by-ball Metrics() = %+v, Run = %+v", tc.name, e, got, want)
			}
			if a.Balls() != m || a.Placed() != m {
				t.Errorf("%s/%v: balls=%d placed=%d want %d", tc.name, e, a.Balls(), a.Placed(), m)
			}
		}
	}
}

// TestAllocatorPlaceBatchMatchesRun checks that PlaceBatch — in
// uneven chunks, exercising the stage-anchored histogram batching —
// also reproduces Run exactly, and that the allocator's Snapshot
// agrees with the final Result.
func TestAllocatorPlaceBatchMatchesRun(t *testing.T) {
	const n, m = 64, 640
	chunks := []int64{1, 63, 100, 256, 220}
	for _, tc := range allocSpecs() {
		for _, e := range []Engine{EngineFast, EngineNaive} {
			want := Run(tc.spec, n, m, WithSeed(23), WithEngine(e))
			a := New(tc.spec, n, WithSeed(23), WithEngine(e), WithHorizon(m))
			var placed, samples int64
			for _, c := range chunks {
				samples += a.PlaceBatch(c)
				placed += c
			}
			if placed != m {
				t.Fatalf("test bug: chunks sum to %d", placed)
			}
			if got := a.Metrics(); got != want {
				t.Errorf("%s/%v: chunked PlaceBatch Metrics() = %+v, Run = %+v", tc.name, e, got, want)
			}
			if samples != want.Samples {
				t.Errorf("%s/%v: PlaceBatch returned %d samples total, want %d",
					tc.name, e, samples, want.Samples)
			}
			snap := a.Snapshot()
			if snap.Ball != m || snap.Samples != want.Samples ||
				snap.MaxLoad != want.MaxLoad || snap.Gap != want.Gap || snap.Psi != want.Psi {
				t.Errorf("%s/%v: Snapshot %+v inconsistent with Result %+v", tc.name, e, snap, want)
			}
		}
	}
}

// TestAllocatorHistMode checks the lazy materialization contract: a
// fast-engine allocator for a histogram-capable spec batches without
// bin identities, and the first identity-dependent call switches it
// permanently to the per-bin vector.
func TestAllocatorHistMode(t *testing.T) {
	a := New(Adaptive(), 32, WithSeed(1))
	if !a.sess.HistMode() {
		t.Fatal("fresh fast adaptive allocator not in hist mode")
	}
	a.PlaceBatch(100)
	if !a.sess.HistMode() {
		t.Fatal("PlaceBatch materialized the vector")
	}
	if a.MaxLoad() <= 0 || a.Balls() != 100 {
		t.Fatalf("hist-mode stats wrong: max=%d balls=%d", a.MaxLoad(), a.Balls())
	}
	bin, _ := a.Place()
	if a.sess.HistMode() {
		t.Fatal("Place left the session in hist mode")
	}
	if got := a.Load(bin); got < 1 {
		t.Fatalf("Load(%d) = %d after placing there", bin, got)
	}
	// Naive engine never uses hist mode.
	b := New(Adaptive(), 32, WithSeed(1), WithEngine(EngineNaive))
	if b.sess.HistMode() {
		t.Fatal("naive allocator in hist mode")
	}
}

// TestAllocatorChurn drives place/remove cycles and checks every load
// vector invariant plus the allocator's bookkeeping after each phase.
func TestAllocatorChurn(t *testing.T) {
	const n = 48
	for _, tc := range allocSpecs() {
		for _, e := range []Engine{EngineFast, EngineNaive} {
			a := New(tc.spec, n, WithSeed(7), WithEngine(e), WithHorizon(10*n))
			var live []int // multiset of bins holding our balls
			for round := 0; round < 8; round++ {
				for i := 0; i < 2*n; i++ {
					bin, _ := a.Place()
					live = append(live, bin)
				}
				// Remove every third live ball, newest first.
				for i := len(live) - 1; i >= 0; i -= 3 {
					a.Remove(live[i])
					live = append(live[:i], live[i+1:]...)
				}
				if err := a.sess.Vector().Validate(); err != nil {
					t.Fatalf("%s/%v round %d: %v", tc.name, e, round, err)
				}
				if a.Balls() != int64(len(live)) {
					t.Fatalf("%s/%v round %d: Balls()=%d want %d",
						tc.name, e, round, a.Balls(), len(live))
				}
			}
			counts := make([]int, n)
			for _, b := range live {
				counts[b]++
			}
			for bin, want := range counts {
				if got := a.Load(bin); got != want {
					t.Fatalf("%s/%v: bin %d load %d want %d", tc.name, e, bin, got, want)
				}
			}
			if a.Placed() != 16*n || a.Placed()-a.Balls() != a.sess.Removed() {
				t.Fatalf("%s/%v: placed=%d balls=%d removed=%d inconsistent",
					tc.name, e, a.Placed(), a.Balls(), a.sess.Removed())
			}
		}
	}
}

// chiCompareInts buckets two integer samples and applies the
// two-sample chi-square, merging adjacent sparse buckets (pooled
// count < 16) so the approximation holds; p-values below 1e-6 fail,
// matching the engine-equivalence suite in internal/protocol.
func chiCompareInts(t *testing.T, label string, a, b []int64) {
	t.Helper()
	lo, hi := a[0], a[0]
	for _, v := range append(append([]int64(nil), a...), b...) {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	width := hi - lo + 1
	ca := make([]int64, width)
	cb := make([]int64, width)
	for _, v := range a {
		ca[v-lo]++
	}
	for _, v := range b {
		cb[v-lo]++
	}
	var ma, mb []int64
	var accA, accB int64
	for i := int64(0); i < width; i++ {
		accA += ca[i]
		accB += cb[i]
		if accA+accB >= 16 || i == width-1 {
			ma = append(ma, accA)
			mb = append(mb, accB)
			accA, accB = 0, 0
		}
	}
	if len(ma) < 2 {
		return // everything in one bucket: trivially equal
	}
	if _, p := dist.TwoSampleChiSquare(ma, mb); p < 1e-6 {
		t.Errorf("%s: chi-square p = %g, distributions differ", label, p)
	}
}

// TestAllocatorPlaceBatchChiSquareVsNaive checks the distributional
// half of the PlaceBatch contract: the fast batched path (histogram
// hot loop) produces Samples and MaxLoad distributed as the naive
// literal rejection loop, under churn that forces materialization
// mid-stream.
func TestAllocatorPlaceBatchChiSquareVsNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("distributional test")
	}
	const n, reps = 16, 1500
	script := func(spec Spec, e Engine, seed uint64) (samples, maxLoad int64) {
		a := New(spec, n, WithSeed(seed), WithEngine(e), WithHorizon(8*n))
		a.PlaceBatch(4 * n)
		bin, _ := a.Place() // forces materialization under the fast engine
		a.Remove(bin)
		a.PlaceBatch(4 * n)
		return a.Samples(), int64(a.MaxLoad())
	}
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"adaptive", Adaptive()},
		{"threshold", Threshold()},
		{"single", SingleChoice()},
		{"retry3", BoundedRetry(3)},
	} {
		var fastS, naiveS, fastM, naiveM []int64
		for rep := 0; rep < reps; rep++ {
			s, m := script(tc.spec, EngineFast, uint64(rep+1))
			fastS, fastM = append(fastS, s), append(fastM, m)
			s, m = script(tc.spec, EngineNaive, uint64(rep+1))
			naiveS, naiveM = append(naiveS, s), append(naiveM, m)
		}
		chiCompareInts(t, tc.name+"/samples", fastS, naiveS)
		chiCompareInts(t, tc.name+"/maxload", fastM, naiveM)
	}
}

// TestBatchedSpecRefreshesUnderChurn pins the batched snapshot
// contract under Allocator churn: the refresh counts placements, not
// the live ball count, so a steady place+remove workload still gets a
// fresh snapshot every b placements and the power-of-two-choices
// benefit survives (a permanently stale all-zero snapshot would let
// loads drift arbitrarily far apart).
func TestBatchedSpecRefreshesUnderChurn(t *testing.T) {
	const n, b = 32, 64
	a := New(BatchedGreedy(b, 2), n, WithSeed(5))
	var live []int
	for i := 0; i < 200*b; i++ {
		bin, _ := a.Place()
		live = append(live, bin)
		if len(live) > 4*n { // hold the live count near 4n < b·2
			a.Remove(live[0])
			live = live[1:]
		}
	}
	// With working refreshes greedy[2] keeps the gap tight; a frozen
	// snapshot degenerates to single-choice-on-zeros and the gap blows
	// past any small bound at this depth (empirically ≥ 15).
	if gap := a.Gap(); gap > 8 {
		t.Fatalf("batched-greedy gap %d under churn: snapshot went stale", gap)
	}
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero spec":          func() { New(Spec{}, 8) },
		"n=0":                func() { New(Adaptive(), 0) },
		"snapshots option":   func() { New(Adaptive(), 8, WithSnapshots(1, func(Snapshot) {})) },
		"threshold horizon":  func() { New(Threshold(), 8) },
		"retry horizon":      func() { New(BoundedRetry(2), 8) },
		"negative horizon":   func() { WithHorizon(-1) },
		"remove empty":       func() { New(Adaptive(), 8).Remove(3) },
		"sharded shards=0":   func() { NewSharded(Adaptive(), 8, 0) },
		"sharded shards>n":   func() { NewSharded(Adaptive(), 8, 9) },
		"sharded bin range":  func() { NewSharded(Adaptive(), 8, 2).Remove(8) },
		"sharded zero spec":  func() { NewSharded(Spec{}, 8, 2) },
		"sharded n=0":        func() { NewSharded(Adaptive(), 0, 1) },
		"sharded no horizon": func() { NewSharded(Threshold(), 8, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestAllocatorHorizonOnlineProtocolsDontNeedIt pins the horizon
// contract: online specs construct without one, and the two
// m-dependent specs work once it is given.
func TestAllocatorHorizonOnlineProtocolsDontNeedIt(t *testing.T) {
	for _, s := range []Spec{Adaptive(), SingleChoice(), Greedy(2), FixedThreshold(4)} {
		a := New(s, 16, WithSeed(1))
		a.PlaceBatch(16)
		if a.Balls() != 16 {
			t.Fatalf("%s: placed %d", s.Name(), a.Balls())
		}
	}
	a := New(Threshold(), 16, WithSeed(1), WithHorizon(64))
	a.PlaceBatch(64)
	if got, want := int64(a.MaxLoad()), MaxLoadGuarantee(16, 64); got > want {
		t.Fatalf("threshold allocator max load %d beyond guarantee %d", got, want)
	}
}

func TestShardedAllocatorSequential(t *testing.T) {
	const n, shards = 60, 7 // deliberately not divisible
	const m = 20 * n
	sa := NewSharded(Adaptive(), n, shards, WithSeed(5))
	var placed []int
	for i := 0; i < m/2; i++ {
		bin, samples := sa.Place()
		if bin < 0 || bin >= n || samples < 1 {
			t.Fatalf("Place returned (%d, %d)", bin, samples)
		}
		placed = append(placed, bin)
	}
	sa.PlaceBatch(int64(m / 2))
	if sa.Balls() != m {
		t.Fatalf("Balls() = %d want %d", sa.Balls(), m)
	}
	// Round-robin bounds each shard's ball count by ⌈m/P⌉ and the
	// smallest shard has ⌊n/P⌋ bins, so the per-shard adaptive
	// guarantee caps the global max load at ⌈⌈m/P⌉/⌊n/P⌋⌉ + 1.
	ceil := func(a, b int64) int64 { return (a + b - 1) / b }
	bound := ceil(ceil(m, shards), n/shards) + 1
	if got := sa.MaxLoad(); int64(got) > bound {
		t.Errorf("sharded max load %d beyond %d", got, bound)
	}
	loads := sa.Loads()
	if len(loads) != n {
		t.Fatalf("Loads() length %d", len(loads))
	}
	var sum, sumSq int64
	min, max := loads[0], loads[0]
	for _, l := range loads {
		sum += int64(l)
		sumSq += int64(l) * int64(l)
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if sum != m {
		t.Fatalf("loads sum to %d want %d", sum, m)
	}
	if sa.MaxLoad() != max || sa.MinLoad() != min || sa.Gap() != max-min {
		t.Fatalf("aggregates disagree with Loads: max %d/%d min %d/%d",
			sa.MaxLoad(), max, sa.MinLoad(), min)
	}
	wantPsi := float64(sumSq) - float64(m)*float64(m)/float64(n)
	if got := sa.Psi(); got != wantPsi {
		t.Fatalf("Psi() = %v want %v", got, wantPsi)
	}
	res := sa.Metrics()
	if res.MaxLoad != max || res.Gap != max-min || res.Psi != wantPsi || res.Samples != sa.Samples() {
		t.Fatalf("Metrics inconsistent: %+v", res)
	}
	if res.Phi <= 0 {
		t.Fatalf("Phi = %v", res.Phi)
	}
	// Removals route back to the owning shard.
	for _, bin := range placed {
		before := sa.Load(bin)
		sa.Remove(bin)
		if sa.Load(bin) != before-1 {
			t.Fatalf("Remove(%d) did not decrement", bin)
		}
	}
	if sa.Balls() != m-int64(len(placed)) {
		t.Fatalf("Balls() = %d after removals", sa.Balls())
	}
}

// TestShardedAllocatorMixedRoundRobin pins the shared-cursor contract:
// Place and PlaceBatch claim tickets from the same round-robin
// counter, so any interleaving keeps per-shard ball counts within one
// of each other.
func TestShardedAllocatorMixedRoundRobin(t *testing.T) {
	const n, shards = 16, 2
	sa := NewSharded(SingleChoice(), n, shards, WithSeed(1))
	for i := 0; i < 20; i++ {
		sa.Place()
		sa.PlaceBatch(1)
		sa.PlaceBatch(3)
	}
	var counts []int64
	for _, sh := range sa.shards {
		counts = append(counts, sh.a.Balls())
	}
	if diff := counts[0] - counts[1]; diff > 1 || diff < -1 {
		t.Fatalf("mixed Place/PlaceBatch skewed shards: %v", counts)
	}
}

// TestShardedAllocatorThresholdHorizon pins the horizon split: a
// horizon-bound spec must absorb its full declared horizon through any
// mix of entry points, even when shard sizes are uneven (each shard
// can receive up to ⌈m/P⌉ balls regardless of its bin share).
func TestShardedAllocatorThresholdHorizon(t *testing.T) {
	const n, shards = 5, 2 // shard sizes 2 and 3
	const m = 40
	sa := NewSharded(Threshold(), n, shards, WithSeed(2), WithHorizon(m))
	for i := 0; i < m/2; i++ {
		sa.Place()
	}
	sa.PlaceBatch(m / 2)
	if sa.Balls() != m {
		t.Fatalf("placed %d of horizon %d", sa.Balls(), m)
	}
	// Same script under the naive engine (the literal rejection loop
	// would spin forever on an exhausted shard rather than panic).
	sb := NewSharded(Threshold(), n, shards, WithSeed(2), WithHorizon(m), WithEngine(EngineNaive))
	for i := 0; i < m; i++ {
		sb.Place()
	}
	if sb.Balls() != m {
		t.Fatalf("naive placed %d of horizon %d", sb.Balls(), m)
	}
}

// TestShardedAllocatorShardMetrics pins the shard-at-a-time monitoring
// reads: per-shard results must equal the shard allocator's own
// metrics, and at quiescence ApproxMetrics must agree with the
// lock-all Metrics exactly (the consistency gap only opens under
// concurrent writes).
func TestShardedAllocatorShardMetrics(t *testing.T) {
	const n, shards, m = 60, 7, 600
	sa := NewSharded(Adaptive(), n, shards, WithSeed(11))
	sa.PlaceBatch(m)
	for i := 0; i < shards; i++ {
		got := sa.ShardMetrics(i)
		want := sa.shards[i].a.Metrics()
		if got != want {
			t.Errorf("ShardMetrics(%d) = %+v, shard allocator says %+v", i, got, want)
		}
	}
	if got, want := sa.ApproxMetrics(), sa.Metrics(); got != want {
		t.Errorf("quiescent ApproxMetrics = %+v, Metrics = %+v", got, want)
	}
	// Removals keep the agreement.
	for b := 0; b < n; b++ {
		if sa.Load(b) > 0 {
			sa.Remove(b)
		}
	}
	if got, want := sa.ApproxMetrics(), sa.Metrics(); got != want {
		t.Errorf("post-churn ApproxMetrics = %+v, Metrics = %+v", got, want)
	}
	for _, bad := range []int{-1, shards} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardMetrics(%d) did not panic", bad)
				}
			}()
			sa.ShardMetrics(bad)
		}()
	}
}

// TestShardedAllocatorConcurrent hammers one ShardedAllocator from
// many goroutines doing placements and departures; run under -race it
// is the concurrency-safety acceptance test, and the final bookkeeping
// must balance exactly.
func TestShardedAllocatorConcurrent(t *testing.T) {
	const n, shards, workers, perWorker = 128, 8, 16, 2000
	sa := NewSharded(Adaptive(), n, shards, WithSeed(9))
	var wg sync.WaitGroup
	removedCounts := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []int
			for i := 0; i < perWorker; i++ {
				bin, _ := sa.Place()
				mine = append(mine, bin)
				if i%3 == 2 { // churn: drop the oldest of our live balls
					sa.Remove(mine[0])
					mine = mine[1:]
					removedCounts[w]++
				}
				if i%64 == 0 {
					_ = sa.Snapshot() // aggregate reads race against writes
					_ = sa.MaxLoad()
				}
			}
		}(w)
	}
	wg.Wait()
	var removed int64
	for _, c := range removedCounts {
		removed += c
	}
	const totalPlaced = int64(workers * perWorker)
	if sa.Placed() != totalPlaced {
		t.Fatalf("Placed() = %d want %d", sa.Placed(), totalPlaced)
	}
	if sa.Balls() != totalPlaced-removed {
		t.Fatalf("Balls() = %d want %d", sa.Balls(), totalPlaced-removed)
	}
	var sum int64
	for _, l := range sa.Loads() {
		sum += int64(l)
	}
	if sum != sa.Balls() {
		t.Fatalf("loads sum %d != Balls %d", sum, sa.Balls())
	}
}

// FuzzAllocatorChurn drives an Allocator with an arbitrary tape of
// placements, batched placements and removals, and checks the load
// vector invariants and ball bookkeeping after every operation batch.
// Byte semantics: 0x00–0x7F place (low 5 bits + 1 balls via PlaceBatch
// when bit 5 set, else one Place); 0x80–0xFF remove from bin (op mod
// n), skipped when empty.
func FuzzAllocatorChurn(f *testing.F) {
	f.Add([]byte{0x01, 0x21, 0x80, 0x05}, true)
	f.Add([]byte{0x3F, 0x81, 0x82, 0x83, 0x20}, false)
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, tape []byte, fast bool) {
		const n = 13
		engine := EngineNaive
		if fast {
			engine = EngineFast
		}
		a := New(Adaptive(), n, WithSeed(3), WithEngine(engine))
		var placed, removed int64
		for _, op := range tape {
			if op&0x80 != 0 {
				bin := int(op) % n
				if a.Load(bin) > 0 {
					a.Remove(bin)
					removed++
				}
				continue
			}
			if op&0x20 != 0 {
				k := int64(op&0x1F) + 1
				a.PlaceBatch(k)
				placed += k
			} else {
				bin, _ := a.Place()
				if bin < 0 || bin >= n {
					t.Fatalf("Place returned %d", bin)
				}
				placed++
			}
		}
		if a.Placed() != placed || a.Balls() != placed-removed {
			t.Fatalf("bookkeeping: placed=%d/%d balls=%d/%d",
				a.Placed(), placed, a.Balls(), placed-removed)
		}
		if err := a.sess.Vector().Validate(); err != nil {
			t.Fatalf("invariants after %d ops: %v", len(tape), err)
		}
	})
}
