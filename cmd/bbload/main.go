// Command bbload generates serving workloads against a bbserved
// instance (HTTP), an in-process dispatch core, or an in-process
// routing cluster, and writes the measured throughput and latency
// quantiles as a BENCH JSON record (schema bbserve/v1, or bbcluster/v1
// for cluster runs).
//
// Modes:
//
//   - open: Poisson arrivals at -rate balls/sec, each ball departing
//     after an exponential or lognormal service time — the supermarket
//     continuous-arrival regime.
//   - closed: -workers concurrent place+remove loops, measuring
//     saturation throughput (errors reported per worker).
//
// Scenarios shape the open-loop arrival rate over the run: steady,
// ramp, flash (crowd spike), skew (Zipf bulk sizes) — plus the keyed
// family (schema bbkeyed/v1): keyed (steady Zipf key popularity from
// a seedable stream), keyed-flash (one key takes 30% of mid-run
// traffic), keyed-churn (the key space rotates), keyed-kill (one
// backend dies mid-run; cluster target), keyed-restart (the routing
// tier crash-restarts from its WAL mid-run; cluster target — stamps
// recovery_ms, assignments_recovered, affinity_hit_rate_post_restart).
//
// Usage:
//
//	bbload -target http://127.0.0.1:8080 -mode open -scenarios steady \
//	        -rate 2000 -duration 30s -service 50ms
//	bbload -target inproc -mode closed -workers 64 -duration 10s \
//	        -spec adaptive -n 100000 -shards 8
//	bbload -target cluster -cluster-backends 8 -policies single,greedy,adaptive \
//	        -scenarios steady,skew,flash -rate 4000 -duration 10s
//	bbload -target cluster -cluster-backends 8 \
//	        -policies keyed-hash,keyed-greedy2,keyed-adaptive \
//	        -scenarios keyed,keyed-flash,keyed-churn -rate 2000 -duration 10s
//
// With -target inproc the generator builds its own dispatcher from
// -spec/-n/-shards/-engine/-seed. With -target cluster it builds
// -cluster-backends in-proc dispatch cores fronted by a cluster.Router
// and runs every scenario under every -policies entry (fresh backends
// per run), recording the cross-backend gap each routing policy
// achieved — the single-machine version of bbload → bbproxy →
// N×bbserved. With an http target those flags are ignored (the
// server's configuration governs) and the run is labeled from the
// server's /v1/stats info; pointing at a bbproxy stamps the cluster
// fields from its aggregated stats.
//
// URL targets take -transport wire to drive the server's binary wire
// listener (discovered from the probe's info.wire_addr) instead of
// HTTP, and -conns to cap connections (wire pool size; HTTP max
// concurrent connections — -conns 1 is the single-connection
// configuration the transport-gap bench records). Either transport
// stamps the transport, client_coalescing_factor and
// client_bytes_per_op columns into the record.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/benchio"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/keyed"
	"repro/internal/load"
	"repro/internal/serve"
	"repro/internal/watch"
	"repro/internal/wire"
)

// watchCadence is the watchdog tick on the generator's own in-proc
// targets: fast enough that even a short CI run collects a usable
// gap_over_time series. URL targets keep the server's own -watch-every.
const watchCadence = 250 * time.Millisecond

// report is the bbserve/v1 (or bbcluster/v1) schema: the shared
// benchio envelope plus one case per generator run.
type report struct {
	benchio.Env
	Cases []load.Result `json:"cases"`
}

func main() {
	sf := cli.RegisterSpec(flag.CommandLine)
	var (
		target    = flag.String("target", "inproc", `target: "inproc", "cluster", or a base URL like http://127.0.0.1:8080`)
		transport = flag.String("transport", "http", "URL-target transport: http, or wire (the server's advertised -wire-addr listener)")
		conns     = flag.Int("conns", 0, "URL-target connection cap: wire pool size (0 = 1) / max concurrent HTTP conns (0 = unlimited)")
		mode      = flag.String("mode", "open", "load mode: open or closed")
		scenarios = flag.String("scenarios", "steady", "comma-separated scenario presets: "+strings.Join(load.Scenarios(), ", "))
		rate      = flag.Float64("rate", 2000, "open-loop offered ball rate per second")
		workers   = flag.Int("workers", 32, "closed-loop concurrent workers")
		duration  = flag.Duration("duration", 10*time.Second, "measurement window per scenario")
		service   = flag.Duration("service", 50*time.Millisecond, "open-loop mean service time")
		dist      = flag.String("dist", "exp", "service time distribution: exp or lognormal")
		n         = flag.Int("n", 100000, "bins (inproc target; per backend for cluster)")
		shards    = flag.Int("shards", 8, "shards (inproc target; per backend for cluster)")
		horizon   = flag.Int64("horizon", 0, "declared total balls (inproc threshold family / threshold policy)")
		out       = flag.String("out", "", "output path (default BENCH_serve_<date>.json or BENCH_cluster_<date>.json; \"-\" to skip)")

		backends  = flag.Int("cluster-backends", 4, "in-proc backends (cluster target)")
		policies  = flag.String("policies", "single,greedy,adaptive", "comma-separated routing policies (cluster target): "+strings.Join(cluster.Policies(), ", ")+", or keyed-P / keyed[P] with P one of "+strings.Join(keyed.Policies(), ", "))
		retries   = flag.Int("retries", 3, "probe cap (boundedretry policy)")
		staleness = flag.Duration("staleness", 0, "cluster load-view refresh window (0 = local accounting)")

		keySpace = flag.Int("key-space", 0, "keyed scenarios: distinct key count (0 = preset default)")
		keyZipf  = flag.Float64("key-zipf", 0, "keyed scenarios: key popularity Zipf s > 1 (0 = preset default)")

		dataDir   = flag.String("data-dir", "", "cluster target: durable keyed state root (each run gets a fresh subdirectory; empty = temp dir for restart scenarios, in-memory otherwise)")
		snapEvery = flag.Int("snapshot-every", 0, "cluster target: journal records between snapshots (0 = default)")
		fsyncMode = flag.String("fsync", "", "cluster target: WAL fsync policy: always, interval, never (empty = default)")
	)
	flag.Parse()

	if *dist != "exp" && *dist != "lognormal" {
		fmt.Fprintln(os.Stderr, "bbload: -dist must be exp or lognormal")
		os.Exit(2)
	}
	if *transport != "http" && *transport != "wire" {
		fmt.Fprintln(os.Stderr, "bbload: -transport must be http or wire")
		os.Exit(2)
	}

	var names []string
	for _, tok := range strings.Split(*scenarios, ",") {
		names = append(names, strings.TrimSpace(tok))
	}
	policyNames := []string{""}
	schema := "bbserve/v1"
	if *target == "cluster" {
		schema = "bbcluster/v1"
		policyNames = policyNames[:0]
		for _, tok := range strings.Split(*policies, ",") {
			policyNames = append(policyNames, strings.TrimSpace(tok))
		}
	}

	// Keyed scenarios write the bbkeyed/v1 schema (the bbserve/bbcluster
	// records extended with the keyed-tier columns).
	for _, name := range names {
		if sc, err := load.ByName(name); err == nil && sc.Keyed {
			schema = "bbkeyed/v1"
		}
	}

	rep := report{Env: benchio.NewEnv(schema)}
	ctx := context.Background()
	for _, name := range names {
		sc, err := load.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbload:", err)
			os.Exit(2)
		}
		if sc.Keyed {
			if *keySpace > 0 {
				sc.KeySpace = *keySpace
			}
			if *keyZipf > 0 {
				sc.KeyZipfS = *keyZipf
			}
		}
		for _, policy := range policyNames {
			res, err := runOne(ctx, sf, sc, *target, *transport, *conns, *mode, *rate, *workers, *duration,
				*service, *dist, *n, *shards, *horizon, *backends, policy, *retries, *staleness,
				*dataDir, *snapEvery, *fsyncMode)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bbload:", err)
				os.Exit(1)
			}
			line := fmt.Sprintf(
				"bbload: %-6s %-6s %-7s %8.0f ops/s  p50 %s  p99 %s  p999 %s  (placed %d, removed %d, shed %d, errs %d)",
				res.Scenario, res.Mode, res.Target, res.ThroughputPerSec,
				fmtNs(res.PlaceLatencyNs.P50), fmtNs(res.PlaceLatencyNs.P99),
				fmtNs(res.PlaceLatencyNs.P999), res.Placed, res.Removed, res.Shed, res.Errors)
			if res.Policy != "" {
				line += fmt.Sprintf("  [%s x%d gap %d, %.2f probes/pick]",
					res.Policy, res.Backends, res.ClusterGap, res.ProbesPerPick)
			}
			if res.KeyedPolicy != "" {
				line += fmt.Sprintf("  [keyed %s: %d keys, hit %.3f, moved %d, shed %d, hot %d]",
					res.KeyedPolicy, res.Keys, res.AffinityHitRate, res.KeysMoved, res.KeysShed, res.HotKeys)
			}
			if res.ProxyRestarted {
				line += fmt.Sprintf("  [restart: recovered %d keys in %dms, post-restart hit %.3f]",
					res.AssignmentsRecovered, res.RecoveryMs, res.AffinityHitRatePostRestart)
			}
			if len(res.GapOverTime) > 0 {
				last := res.GapOverTime[len(res.GapOverTime)-1]
				line += fmt.Sprintf("  [watch: %d pts, end gap %d, violations %d]",
					len(res.GapOverTime), last.Gap, res.Violations)
			}
			if len(res.StageP99Ns) > 0 {
				stages := make([]string, 0, len(res.StageP99Ns))
				for stage := range res.StageP99Ns {
					stages = append(stages, stage)
				}
				sort.Strings(stages)
				parts := make([]string, len(stages))
				for i, stage := range stages {
					parts[i] = stage + " " + fmtNs(res.StageP99Ns[stage])
				}
				line += "  [stage p99: " + strings.Join(parts, ", ") + "]"
			}
			fmt.Fprintln(os.Stderr, line)
			for i, so := range res.SlowOps {
				if i >= 3 {
					fmt.Fprintf(os.Stderr, "bbload:   ... %d more slow ops in the JSON record\n", len(res.SlowOps)-i)
					break
				}
				detail := "not retained server-side"
				if so.ServerNs > 0 {
					var sp []string
					for _, s := range so.Stages {
						sp = append(sp, s.Stage+" "+fmtNs(s.DurationNs))
					}
					detail = fmt.Sprintf("server %s (%s: %s)", fmtNs(so.ServerNs), so.Hop, strings.Join(sp, " + "))
				}
				fmt.Fprintf(os.Stderr, "bbload:   slow %s %s client %s  %s\n",
					so.Op, so.Trace, fmtNs(so.ClientNs), detail)
			}
			rep.Cases = append(rep.Cases, res)
		}
	}

	path := *out
	if path == "" {
		prefix := "serve_"
		if *target == "cluster" {
			prefix = "cluster_"
		}
		if schema == "bbkeyed/v1" {
			prefix = "keyed_"
		}
		path = benchio.DefaultPath(prefix)
	}
	if path == "-" {
		return
	}
	if err := benchio.WriteJSON(path, rep); err != nil {
		fmt.Fprintln(os.Stderr, "bbload:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

func runOne(ctx context.Context, sf *cli.SpecFlags, sc load.Scenario,
	target, transport string, conns int, mode string, rate float64, workers int, duration, service time.Duration,
	dist string, n, shards int, horizon int64,
	backends int, policyName string, retries int, staleness time.Duration,
	dataDir string, snapEvery int, fsyncMode string) (load.Result, error) {

	cfg := load.Config{
		Scenario:    sc,
		Mode:        mode,
		Rate:        rate,
		Workers:     workers,
		Duration:    duration,
		ServiceMean: service,
		ServiceDist: dist,
		Seed:        int64(sf.Seed),
	}

	var tgt load.Target
	label := "http"
	protocol := ""
	switch target {
	case "inproc":
		spec, err := sf.Spec()
		if err != nil {
			return load.Result{}, err
		}
		eng, err := sf.Engine()
		if err != nil {
			return load.Result{}, err
		}
		d := serve.NewDispatcher(serve.Config{
			Spec: spec, N: n, Shards: shards, Seed: sf.Seed, Engine: eng, Horizon: horizon,
			Watch: watch.Options{Cadence: watchCadence},
		})
		defer d.Close()
		tgt = load.InProc{D: d}
		label = "inproc"
		protocol = d.Name()
	case "cluster":
		spec, err := sf.Spec()
		if err != nil {
			return load.Result{}, err
		}
		eng, err := sf.Engine()
		if err != nil {
			return load.Result{}, err
		}
		// keyed-P (or keyed[P]) policies run the keyed tier under inner
		// policy P; anonymous traffic routes under P's anonymous
		// analogue (hash → single). Same mapping as bbproxy -policy.
		var keyedCfg *keyed.Config
		anonName, anonD := policyName, sf.D
		if inner, ok := keyed.SplitName(policyName); ok {
			kp, kerr := keyed.PolicyByName(inner, sf.D, retries, horizon)
			if kerr != nil {
				return load.Result{}, kerr
			}
			keyedCfg = &keyed.Config{Policy: kp}
			anonName, anonD = keyed.AnonAnalogue(inner, sf.D)
		}
		policy, err := cluster.PolicyByName(anonName, anonD, retries, sf.Bound, horizon)
		if err != nil {
			return load.Result{}, err
		}
		// Restart scenarios need durable keyed state; each run gets a
		// fresh directory so one run's WAL never replays into the next.
		runDir := ""
		if dataDir != "" || sc.RestartProxyFrac > 0 {
			root := dataDir
			if root == "" {
				root = os.TempDir()
			}
			var derr error
			runDir, derr = os.MkdirTemp(root, "bbload-wal-")
			if derr != nil {
				return load.Result{}, derr
			}
			if dataDir == "" {
				defer os.RemoveAll(runDir)
			}
		}
		ct, err := load.NewInprocCluster(load.ClusterConfig{
			Backends: backends, Spec: spec, N: n, Shards: shards,
			Engine: eng, Seed: sf.Seed, Horizon: horizon,
			Policy: policy, Keyed: keyedCfg, Staleness: staleness,
			DataDir: runDir, SnapshotEvery: snapEvery, Fsync: fsyncMode,
			Watch: watch.Options{Cadence: watchCadence},
		})
		if err != nil {
			return load.Result{}, err
		}
		defer ct.Close()
		tgt = ct
		label = "cluster"
		protocol = spec.Name()
		n = ct.R.N() // total bins across the cluster
	default:
		base := strings.TrimSuffix(target, "/")
		ht := load.NewHTTPTargetConns(base, conns)
		info, err := ht.ReadInfo(ctx)
		if err != nil {
			return load.Result{}, fmt.Errorf("probe %s: %w", target, err)
		}
		protocol = info.Protocol
		n, shards = info.N, info.Shards
		if transport == "wire" {
			// The HTTP probe above doubles as wire discovery: the server
			// advertises its -wire-addr in the stats info block.
			addr, werr := wire.ResolveAddr(base, info.WireAddr)
			if werr != nil {
				return load.Result{}, fmt.Errorf("%s: %w (is it running with -wire-addr?)", base, werr)
			}
			wconns := conns
			if wconns <= 0 {
				wconns = 1
			}
			wt, werr := load.NewWireTarget(addr, wconns)
			if werr != nil {
				return load.Result{}, werr
			}
			defer wt.Close()
			// The probe target doubles as the trace reader: GET /v1/trace
			// has no wire verb, so the slow-op join rides HTTP.
			wt.Probe = ht
			tgt = wt
			label = "wire"
		} else {
			tgt = ht
		}
	}

	res, err := load.Run(ctx, cfg, tgt)
	if err != nil {
		return res, err
	}
	res.Target = label
	res.Protocol = protocol
	res.N = n
	res.Shards = shards
	return res, nil
}
