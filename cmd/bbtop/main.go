// Command bbtop renders a live terminal dashboard for a running
// bbserved or bbproxy: it polls GET /v1/stats, /v1/timeseries and
// /v1/events on one target and redraws an ANSI screen each interval —
// per-backend (or per-shard) load bars, a gap sparkline over the
// watchdog's time series, the tail of the invariant event journal, and
// a red banner the moment bb_invariant_violations_total goes nonzero.
//
// Usage:
//
//	bbtop -target http://localhost:8080
//	bbtop -target http://localhost:8090 -every 500ms -window 120
//	bbtop -target http://localhost:8080 -once -format json | jq .
//
// The dashboard adapts to the hop it is watching: against a bbproxy it
// draws one bar per backend from the cluster block (down backends in
// red), against a bbserved one bar per shard. The sparkline is the
// max−min gap from /v1/timeseries, so it shows the watchdog's view of
// balance over the last -window samples, not just the instant.
//
// -once renders a single frame and exits (exit status 1 when the
// target reports violations), and -format json swaps the frame for a
// single machine-readable document — {target, stats, timeseries,
// events} with the raw stats envelope embedded — which is what CI
// asserts on with jq. Without -once, -format json emits one document
// per poll (NDJSON).
//
// bbtop is stdlib-only: plain net/http polling and ANSI escapes, no
// terminal library.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/watch"
)

// statsDoc is the subset of the /v1/stats envelope bbtop renders. One
// struct decodes both daemons: bbserved fills shards, bbproxy fills
// cluster (its pseudo-shard rows are redundant with cluster.rows).
type statsDoc struct {
	Info struct {
		Protocol string `json:"protocol"`
		N        int    `json:"n"`
		Shards   int    `json:"shards"`
		Engine   string `json:"engine"`
	} `json:"info"`
	Balls           int64   `json:"balls"`
	Placed          int64   `json:"placed"`
	Removed         int64   `json:"removed"`
	MaxLoad         int     `json:"max_load"`
	MinLoad         int     `json:"min_load"`
	Gap             int     `json:"gap"`
	Psi             float64 `json:"psi"`
	CombiningFactor float64 `json:"combining_factor"`
	Draining        bool    `json:"draining"`
	Shards          []struct {
		Shard   int   `json:"shard"`
		Balls   int64 `json:"balls"`
		MaxLoad int   `json:"max_load"`
	} `json:"shards"`
	Cluster *struct {
		Policy   string `json:"policy"`
		Backends int    `json:"backends"`
		Healthy  int    `json:"healthy"`
		Rows     []struct {
			Slot  int    `json:"slot"`
			Name  string `json:"name"`
			Up    bool   `json:"up"`
			Balls int64  `json:"balls"`
			AgeMs int64  `json:"age_ms"`
		} `json:"rows"`
	} `json:"cluster"`
	Keyed *struct {
		Keys       int64 `json:"keys"`
		Hits       int64 `json:"affinity_hits"`
		Misses     int64 `json:"affinity_misses"`
		MaxKeyLoad int64 `json:"max_key_load"`
	} `json:"keyed"`
	Watch *watch.StatsBlock `json:"watch"`
}

// frame is one polled snapshot of the target: everything a render (or
// the -format json document) needs.
type frame struct {
	Target string               `json:"target"`
	Stats  json.RawMessage      `json:"stats"`
	Series watch.SeriesResponse `json:"timeseries"`
	Events watch.EventsResponse `json:"events"`

	doc statsDoc // Stats decoded for rendering
}

func main() {
	var (
		target  = flag.String("target", "http://localhost:8080", "bbserved or bbproxy base URL")
		every   = flag.Duration("every", time.Second, "poll and redraw interval")
		window  = flag.Int("window", 60, "time-series samples to request for the sparkline")
		tail    = flag.Int("events", 8, "event-journal tail length")
		once    = flag.Bool("once", false, "render one frame and exit (status 1 on violations)")
		format  = flag.String("format", "text", "output format: text, json")
		noColor = flag.Bool("no-color", false, "disable ANSI colors")
	)
	flag.Parse()
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "bbtop: unknown -format %q (want text or json)\n", *format)
		os.Exit(2)
	}
	base := strings.TrimRight(*target, "/")
	client := &http.Client{Timeout: 5 * time.Second}
	enc := json.NewEncoder(os.Stdout)

	live := *format == "text" && !*once
	for first := true; ; first = false {
		if !first {
			time.Sleep(*every)
		}
		f, err := poll(client, base, *window)
		if err != nil {
			if *once {
				fmt.Fprintln(os.Stderr, "bbtop:", err)
				os.Exit(1)
			}
			if live {
				fmt.Printf("\x1b[H\x1b[2J") // keep redrawing through blips
			}
			fmt.Printf("bbtop: %v (retrying every %v)\n", err, *every)
			continue
		}
		switch *format {
		case "json":
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(os.Stderr, "bbtop:", err)
				os.Exit(1)
			}
		default:
			if live {
				fmt.Printf("\x1b[H\x1b[2J")
			}
			os.Stdout.WriteString(render(f, *tail, !*noColor))
		}
		if *once {
			if f.violations() > 0 {
				os.Exit(1)
			}
			return
		}
	}
}

// poll fetches the three surfaces that make up one frame.
func poll(client *http.Client, base string, window int) (*frame, error) {
	f := &frame{Target: base}
	raw, err := get(client, base+"/v1/stats")
	if err != nil {
		return nil, err
	}
	f.Stats = raw
	if err := json.Unmarshal(raw, &f.doc); err != nil {
		return nil, fmt.Errorf("decode /v1/stats: %w", err)
	}
	raw, err = get(client, base+"/v1/timeseries?window="+url.QueryEscape(fmt.Sprint(window)))
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &f.Series); err != nil {
		return nil, fmt.Errorf("decode /v1/timeseries: %w", err)
	}
	raw, err = get(client, base+"/v1/events")
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &f.Events); err != nil {
		return nil, fmt.Errorf("decode /v1/events: %w", err)
	}
	return f, nil
}

func get(client *http.Client, u string) ([]byte, error) {
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("GET %s: %w", u, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// violations is the banner verdict: the journal's total (covers
// watchdog-off targets via the zero value) or the stats block's,
// whichever is larger — they can skew by one poll.
func (f *frame) violations() int64 {
	v := f.Events.ViolationsTotal
	if f.doc.Watch != nil && f.doc.Watch.ViolationsTotal > v {
		v = f.doc.Watch.ViolationsTotal
	}
	return v
}

const (
	barWidth  = 40
	sparkRune = "▁▂▃▄▅▆▇█"
)

func render(f *frame, tail int, color bool) string {
	paint := func(code, s string) string {
		if !color {
			return s
		}
		return "\x1b[" + code + "m" + s + "\x1b[0m"
	}
	var b strings.Builder

	// Header: target, hop shape, drain state.
	hop := fmt.Sprintf("%s  n=%d  shards=%d  engine=%s",
		f.doc.Info.Protocol, f.doc.Info.N, f.doc.Info.Shards, f.doc.Info.Engine)
	if c := f.doc.Cluster; c != nil {
		hop = fmt.Sprintf("%s  policy=%s  backends=%d/%d healthy  n=%d/backend",
			f.doc.Info.Protocol, c.Policy, c.Healthy, c.Backends, f.doc.Info.N)
	}
	fmt.Fprintf(&b, "%s  %s  %s\n", paint("1", "bbtop"), f.Target, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "%s", hop)
	if f.doc.Draining {
		fmt.Fprintf(&b, "  %s", paint("33", "DRAINING"))
	}
	b.WriteString("\n")

	// Violation banner: full red line plus the offending invariants.
	if v := f.violations(); v > 0 {
		fmt.Fprintf(&b, "%s\n", paint("41;97;1",
			fmt.Sprintf(" BOUND VIOLATION  bb_invariant_violations_total=%d ", v)))
		for _, inv := range sortedKeys(f.Events.Violations) {
			fmt.Fprintf(&b, "  %s %s ×%d\n", paint("31", "✗"), inv, f.Events.Violations[inv])
		}
	} else {
		fmt.Fprintf(&b, "%s all invariants holding\n", paint("32", "✓"))
	}

	// Totals row.
	fmt.Fprintf(&b, "balls %d  max %d  min %d  gap %d  ψ %.4f  combine %.2f",
		f.doc.Balls, f.doc.MaxLoad, f.doc.MinLoad, f.doc.Gap, f.doc.Psi, f.doc.CombiningFactor)
	if p := lastPoint(f.Series.Points); p != nil {
		fmt.Fprintf(&b, "  ops/s %.0f", p.OpsPerSec)
	}
	if k := f.doc.Keyed; k != nil && k.Hits+k.Misses > 0 {
		fmt.Fprintf(&b, "  keys %d  hit %.3f", k.Keys,
			float64(k.Hits)/float64(k.Hits+k.Misses))
	}
	b.WriteString("\n\n")

	// Load bars: one per backend against a proxy, else one per shard.
	if c := f.doc.Cluster; c != nil {
		var peak int64 = 1
		for _, r := range c.Rows {
			if r.Balls > peak {
				peak = r.Balls
			}
		}
		for _, r := range c.Rows {
			bar := loadBar(r.Balls, peak)
			if r.Up {
				fmt.Fprintf(&b, "%-12s %s %d\n", r.Name, paint("36", bar), r.Balls)
			} else {
				fmt.Fprintf(&b, "%-12s %s %s\n", r.Name, paint("31", bar), paint("31;1", "DOWN"))
			}
		}
	} else {
		var peak int64 = 1
		for _, s := range f.doc.Shards {
			if s.Balls > peak {
				peak = s.Balls
			}
		}
		for _, s := range f.doc.Shards {
			fmt.Fprintf(&b, "shard %-6d %s %d (max %d)\n",
				s.Shard, paint("36", loadBar(s.Balls, peak)), s.Balls, s.MaxLoad)
		}
	}
	b.WriteString("\n")

	// Gap sparkline over the watchdog series.
	if pts := f.Series.Points; len(pts) > 0 {
		gaps := make([]int, len(pts))
		lo, hi := pts[0].Gap, pts[0].Gap
		for i, p := range pts {
			gaps[i] = p.Gap
			if p.Gap < lo {
				lo = p.Gap
			}
			if p.Gap > hi {
				hi = p.Gap
			}
		}
		fmt.Fprintf(&b, "gap  %s  [%d..%d] over %d×%dms\n",
			paint("35", sparkline(gaps, lo, hi)), lo, hi, len(pts), f.Series.CadenceMs)
	} else {
		b.WriteString("gap  (no time series yet — is the watchdog enabled?)\n")
	}

	// Event tail, newest last.
	evs := f.Events.Events
	if len(evs) > tail {
		evs = evs[len(evs)-tail:]
	}
	var total int64
	for _, n := range f.Events.EventCounts {
		total += n
	}
	fmt.Fprintf(&b, "\nevents (%d total, tail %d)\n", total, len(evs))
	for _, ev := range evs {
		ts := time.UnixMilli(ev.TimeUnixMs).Format("15:04:05.000")
		typ := string(ev.Type)
		switch ev.Type {
		case watch.EventBoundViolation:
			typ = paint("31;1", typ)
		case watch.EventEviction:
			typ = paint("33", typ)
		case watch.EventRejoin, watch.EventRecovery:
			typ = paint("32", typ)
		default:
			typ = paint("36", typ)
		}
		fmt.Fprintf(&b, "  %s  %-15s %s\n", ts, typ, ev.Detail)
	}
	if len(evs) == 0 {
		b.WriteString("  (none)\n")
	}
	return b.String()
}

// loadBar renders v against peak as a fixed-width block bar.
func loadBar(v, peak int64) string {
	fill := int(v * barWidth / peak)
	if fill > barWidth {
		fill = barWidth
	}
	if v > 0 && fill == 0 {
		fill = 1
	}
	return strings.Repeat("█", fill) + strings.Repeat("·", barWidth-fill)
}

// sparkline maps vals into 8 block-element levels between lo and hi.
func sparkline(vals []int, lo, hi int) string {
	runes := []rune(sparkRune)
	span := hi - lo
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if span > 0 {
			i = (v - lo) * (len(runes) - 1) / span
		}
		b.WriteRune(runes[i])
	}
	return b.String()
}

func lastPoint(pts []watch.Point) *watch.Point {
	if len(pts) == 0 {
		return nil
	}
	return &pts[len(pts)-1]
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
