// Command bbproxy is the cluster routing tier: it serves the same
// HTTP surface as a single bbserved but fans traffic out across many
// bbserved backends, using the paper's allocation protocols as live
// load-balancing policies (backends are the bins; a protocol retry is
// a probe of another backend against a stale load view).
//
// Usage:
//
//	bbproxy -addr :8080 \
//	    -backends http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	    -policy greedy -d 2 -staleness 500ms
//	bbproxy -backends ... -policy adaptive
//	bbproxy -backends ... -policy boundedretry -retries 3
//	bbproxy -backends ... -policy 'keyed[adaptive]'
//
// Policies: single (random routing), greedy (-d choices), adaptive,
// threshold (-horizon), boundedretry (-retries), fixed (-bound).
// A keyed[P] policy additionally runs the keyed placement tier
// (internal/keyed): requests carrying ?key= get consistent bounded-
// load key→backend assignment under inner policy P (hash, greedy,
// adaptive, threshold, boundedretry) with sticky affinity, hot-key
// splitting (-replicas, -hot-share) and minimal-disruption
// rebalancing on evict/rejoin; anonymous requests keep routing under
// P's anonymous analogue.
//
// API (identical to bbserved, plus the aggregated cluster block):
//
//	POST /v1/place[?count=k]  route 1 (default) or k balls
//	POST /v1/place?key=K      keyed placement (bulk + key is a 400)
//	POST /v1/remove?bin=g[&key=K]  remove from global bin g (slot·n + local)
//	GET  /v1/stats            aggregated cluster view + per-backend rows
//	GET  /v1/events           invariant watchdog event journal
//	                          (EVICTION/REJOIN/REBALANCE/…)
//	GET  /v1/timeseries       watchdog time series (?window=N)
//	GET  /healthz             200 while routable, 503 otherwise
//	GET  /metrics             Prometheus text format
//
// -watch-every sets the invariant watchdog's cadence (0 disables it):
// each tick re-checks the paper's cross-backend bound against the live
// load view, and membership changes journal EVICTION/REJOIN/REBALANCE
// events the moment they happen.
//
// Backends that fail -fail-after consecutive health probes (or live
// requests) are evicted from routing and rejoin automatically after
// -rise-after successful probes. SIGINT/SIGTERM drain gracefully.
//
// With -wire-addr the proxy serves the binary wire protocol
// (internal/wire) alongside HTTP, and by default (-wire-backends) it
// also dials any backend that advertises a wire listener in its
// /v1/stats info over wire instead of HTTP — the startup probe doubles
// as discovery, HTTP stays as the fallback, and health/failover/
// eviction are transport-agnostic.
//
// With -data-dir the keyed tier is durable: every key→backend
// mutation is journaled to a CRC-checked write-ahead log with periodic
// compacting snapshots, a restarted proxy replays to the exact
// pre-crash assignment before routing (healthz answers 503 while the
// replay runs), and the SIGTERM drain writes a final snapshot so a
// clean restart loses nothing. -fsync picks the append durability
// policy and -snapshot-every the compaction cadence.
//
// With -diag-dir the flight recorder (internal/diag) is armed — same
// triggers as bbserved (invariant violation, recovery anomaly, armed
// crash point, SIGQUIT) — and the proxy's bundles capture the
// cross-tier trace picture: the trace section fans out to every live
// backend's retained-op ring, so one bundle holds the complete
// proxy→backend op path. GET /v1/trace/{id} serves the same assembly
// live.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/diag"
	"repro/internal/keyed"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wal"
	"repro/internal/watch"
	"repro/internal/wire"
)

// checkedBackend defers the bin-count agreement check for a backend
// that was down at the startup probe. Every forwarded operation —
// place, remove, and health — first verifies (once) that the backend
// serves wantN bins, so even though the slot sits in rotation from the
// start, a misconfigured late joiner can never serve a mis-numbered
// placement: its operations fail, the router fails over and evicts it,
// and the mismatch is reported once.
type checkedBackend struct {
	*cluster.HTTPBackend
	wantN  int
	ok     atomic.Bool
	warned atomic.Bool
}

func (c *checkedBackend) verify(ctx context.Context) error {
	if c.ok.Load() {
		return nil
	}
	info, err := c.Info(ctx)
	if err != nil {
		return err
	}
	if info.N != c.wantN {
		if c.warned.CompareAndSwap(false, true) {
			slog.Warn("backend bin count mismatch, refusing to route to it",
				"backend", c.Name(), "backend_n", info.N, "cluster_n", c.wantN)
		}
		return fmt.Errorf("bbproxy: bin count mismatch on %s: %d != %d", c.Name(), info.N, c.wantN)
	}
	c.ok.Store(true)
	return nil
}

func (c *checkedBackend) Place(ctx context.Context, count int) ([]int, int64, error) {
	if err := c.verify(ctx); err != nil {
		return nil, 0, err
	}
	return c.HTTPBackend.Place(ctx, count)
}

func (c *checkedBackend) Remove(ctx context.Context, bin int) error {
	if err := c.verify(ctx); err != nil {
		return err
	}
	return c.HTTPBackend.Remove(ctx, bin)
}

func (c *checkedBackend) PlaceKey(ctx context.Context, key string) ([]int, int64, error) {
	if err := c.verify(ctx); err != nil {
		return nil, 0, err
	}
	return c.HTTPBackend.PlaceKey(ctx, key)
}

func (c *checkedBackend) RemoveKey(ctx context.Context, bin int, key string) error {
	if err := c.verify(ctx); err != nil {
		return err
	}
	return c.HTTPBackend.RemoveKey(ctx, bin, key)
}

func (c *checkedBackend) Health(ctx context.Context) error {
	if err := c.HTTPBackend.Health(ctx); err != nil {
		return err
	}
	return c.verify(ctx)
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		wireAddr    = flag.String("wire-addr", "", "binary wire-protocol listen address (empty = HTTP only)")
		wireDial    = flag.Bool("wire-backends", true, "dial backends over the wire protocol when they advertise one")
		backends    = flag.String("backends", "", "comma-separated backend base URLs (required)")
		policyName  = flag.String("policy", "greedy", "routing policy: "+strings.Join(cluster.Policies(), ", ")+", or keyed[P] with P one of "+strings.Join(keyed.Policies(), ", "))
		d           = flag.Int("d", 2, "choices per pick (greedy)")
		retries     = flag.Int("retries", 3, "probe cap (boundedretry)")
		bound       = flag.Int("bound", 0, "absolute per-backend ball bound (fixed)")
		horizon     = flag.Int64("horizon", 0, "declared total balls (threshold)")
		seed        = flag.Uint64("seed", 1, "routing RNG seed")
		staleness   = flag.Duration("staleness", 500*time.Millisecond, "load-view refresh window (0 = local accounting only)")
		healthEvery = flag.Duration("health-every", 1*time.Second, "health probe period (0 = no health loop)")
		failAfter   = flag.Int("fail-after", 2, "consecutive failures to evict a backend")
		riseAfter   = flag.Int("rise-after", 2, "consecutive successful probes to rejoin")
		replicas    = flag.Int("replicas", keyed.DefaultReplicas, "keyed tier: hot-key replica set size (1 disables splitting)")
		hotShare    = flag.Float64("hot-share", keyed.DefaultHotShare, "keyed tier: request share promoting a key to replicas (>=1 disables)")
		maxKeys     = flag.Int("max-keys", keyed.DefaultMaxKeys, "keyed tier: affinity table capacity")
		dataDir     = flag.String("data-dir", "", "durable keyed state directory (WAL + snapshots; empty = in-memory only)")
		snapEvery   = flag.Int("snapshot-every", keyed.DefaultSnapshotEvery, "journal records between compacting snapshots")
		fsync       = flag.String("fsync", wal.SyncInterval, "WAL fsync policy: always, interval, never")
		debugAddr   = flag.String("debug-addr", "", "net/http/pprof listen address (empty = off)")
		traceSlow   = flag.Duration("trace-slow", 0, "trace ops at or above this latency (0 = default 10ms)")
		traceSample = flag.Int("trace-sample", 0, "head-sample 1 in N ops into the trace ring (0 = default 1024)")
		watchEvery  = flag.Duration("watch-every", watch.DefaultCadence, "invariant watchdog cadence (0 disables the watchdog)")
		diagDir     = flag.String("diag-dir", "", "flight-recorder bundle directory (empty = postmortem capture off)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text, json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbproxy:", err)
		os.Exit(2)
	}
	logger = logger.With("component", "bbproxy")
	slog.SetDefault(logger)
	fatal := func(err error, code int) {
		logger.Error("fatal", "err", err)
		os.Exit(code)
	}

	var urls []string
	for _, tok := range strings.Split(*backends, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			urls = append(urls, strings.TrimSuffix(tok, "/"))
		}
	}
	if len(urls) == 0 {
		fatal(errors.New("-backends is required (comma-separated base URLs)"), 2)
	}

	// A "keyed[P]" (or "keyed-P") policy enables the keyed placement
	// tier under inner policy P; anonymous (unkeyed) requests then
	// route under the matching anonymous policy — P itself, except
	// hash, whose anonymous analogue is single-choice.
	var keyedCfg *keyed.Config
	anonName := *policyName
	anonD := *d
	if inner, ok := keyed.SplitName(*policyName); ok {
		kp, err := keyed.PolicyByName(inner, *d, *retries, *horizon)
		if err != nil {
			fatal(err, 2)
		}
		keyedCfg = &keyed.Config{
			Policy:   kp,
			Replicas: *replicas,
			HotShare: *hotShare,
			MaxKeys:  *maxKeys,
		}
		anonName, anonD = keyed.AnonAnalogue(inner, *d)
	}
	policy, err := cluster.PolicyByName(anonName, anonD, *retries, *bound, *horizon)
	if err != nil {
		fatal(err, 2)
	}

	// Probe the backends for their configuration: every backend must
	// serve the same number of bins for the global bin numbering
	// slot·n + local to be well defined. Backends that are down at
	// startup are tolerated as long as at least one answers — their
	// operations are gated on a deferred bin-count check
	// (checkedBackend), so a misconfigured late joiner can never
	// corrupt the numbering.
	hbs := make([]*cluster.HTTPBackend, len(urls))
	verified := make([]bool, len(urls))
	wireAddrs := make([]string, len(urls))
	n, protocol := 0, ""
	probeCtx, cancelProbe := context.WithTimeout(context.Background(), 10*time.Second)
	for i, u := range urls {
		hbs[i] = cluster.NewHTTPBackend(u)
		info, err := hbs[i].Info(probeCtx)
		if err != nil {
			logger.Warn("backend unreachable at startup", "backend", u, "err", err)
			continue
		}
		verified[i] = true
		wireAddrs[i] = info.WireAddr
		if n == 0 {
			n, protocol = info.N, info.Protocol
		} else if info.N != n {
			fatal(fmt.Errorf("backend %s serves n=%d, others n=%d — all backends must match", u, info.N, n), 2)
		}
	}
	cancelProbe()
	if n == 0 {
		fatal(errors.New("no backend answered the startup probe"), 1)
	}
	bks := make([]cluster.Backend, len(urls))
	for i, hb := range hbs {
		switch {
		case !verified[i]:
			// Down at startup: HTTP with a deferred bin-count check.
			// (No wire address is known for it either — it rejoins over
			// HTTP; the advertised wire listener is a startup upgrade.)
			bks[i] = &checkedBackend{HTTPBackend: hb, wantN: n}
		case *wireDial && wireAddrs[i] != "":
			wb, err := cluster.NewWireBackend(hb, wireAddrs[i], n)
			if err != nil {
				logger.Warn("wire dial failed, falling back to HTTP",
					"backend", hb.Name(), "wire_addr", wireAddrs[i], "err", err)
				bks[i] = hb
				continue
			}
			logger.Info("backend dialed over wire", "backend", hb.Name(), "wire_addr", wireAddrs[i])
			bks[i] = wb
		default:
			bks[i] = hb
		}
	}

	rcfg := cluster.Config{
		Backends:       bks,
		BinsPerBackend: n,
		Policy:         policy,
		Seed:           *seed,
		Staleness:      *staleness,
		HealthEvery:    *healthEvery,
		FailAfter:      *failAfter,
		RiseAfter:      *riseAfter,
		Keyed:          keyedCfg,
		Obs:            obs.Options{SlowThreshold: *traceSlow, SampleEvery: *traceSample},
		Watch:          watch.Options{Cadence: *watchEvery, Disabled: *watchEvery <= 0},
		Logger:         logger,
	}
	if *dataDir != "" {
		rcfg.KeyedStore = &keyed.StoreOptions{
			Dir:           *dataDir,
			SnapshotEvery: *snapEvery,
			Fsync:         *fsync,
		}
	}

	// Bring the listener up before recovery so healthz is observable
	// (503 "recovering") while the WAL replays; the real handler is
	// swapped in once the router is ready to route.
	var handler atomic.Pointer[http.Handler]
	var warming http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "recovering", http.StatusServiceUnavailable)
	})
	handler.Store(&warming)
	srv := &http.Server{Addr: *addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	})}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	// Reserve the proxy's wire listener early; serving starts once the
	// router is ready (queued dials wait in the backlog).
	var wireLn net.Listener
	if *wireAddr != "" {
		wireLn, err = net.Listen("tcp", *wireAddr)
		if err != nil {
			fatal(err, 1)
		}
	}

	rt, rec, err := cluster.OpenRouter(rcfg)
	if err != nil {
		fatal(err, 1)
	}
	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr, rt.Watch())
	}
	if rec != nil {
		logger.Info("recovered keyed state",
			"snapshot_keys", rec.SnapshotKeys, "journal_records", rec.ReplayedRecords,
			"replay_ms", rec.ReplayMs, "dir", *dataDir)
	}
	served := rt.Policy()
	if km := rt.Keyed(); km != nil {
		served = "keyed[" + km.PolicyName() + "]+" + served
	}
	info := serve.Info{
		Protocol: "cluster/" + served,
		N:        rt.N(),
		Shards:   len(bks),
		Engine:   protocol, // the backends' protocol, for labeling
		Seed:     *seed,
		WireAddr: *wireAddr,
	}
	var ws *wire.Server
	if wireLn != nil {
		wh := cluster.NewRouterWire(rt, info)
		ws = wire.NewServer(wh, wire.ServerOptions{Logger: logger})
		wh.BindServer(ws)
		go func() {
			if err := ws.Serve(wireLn); err != nil {
				logger.Error("wire server exited", "err", err)
			}
		}()
	}
	var real http.Handler = cluster.NewHandlerWire(rt, info, ws)
	handler.Store(&real)

	// Arm the flight recorder last: its stats closure captures the
	// fully-assembled surface, and its trace capture fans out across
	// the live backends so proxy bundles hold the cross-tier picture.
	diagRec, err := diag.New(diag.Options{
		Dir: *diagDir, Hop: "proxy", Build: obs.Build(wire.Version), Logger: logger,
	}, diag.Sources{
		Monitor: rt.Watch(),
		Obs:     rt.Obs(),
		StatsJSON: func(ctx context.Context) ([]byte, error) {
			return json.Marshal(cluster.BuildStatsResponse(rt, info, ws))
		},
		TraceOps: rt.GatherAllTraces,
		Durability: func() any {
			if ds := rt.Durability(); ds != nil {
				return ds
			}
			return nil
		},
	})
	if err != nil {
		fatal(err, 1)
	}
	if diagRec != nil {
		rt.BindDiag(diagRec)
		var torn int64
		if ds := rt.Durability(); ds != nil {
			torn = ds.RecoveryTornBytes
		}
		diagRec.CheckStartup(context.Background(), torn)
		// SIGQUIT dumps a bundle and keeps serving — deliberately
		// separate from the SIGINT/SIGTERM drain path.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				path, err := diagRec.Dump(ctx, diag.TriggerSignal, "operator SIGQUIT")
				cancel()
				if err != nil {
					logger.Error("diag: SIGQUIT dump failed", "err", err)
				} else {
					logger.Info("diag: SIGQUIT bundle written", "path", path)
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		logger.Info("signal received, draining", "signal", sig.String())
		// Flip to draining first (healthz goes 503 while the listener
		// still answers, so upstream balancers can observe the drain),
		// then stop the listener, letting in-flight proxying finish.
		rt.Close()
		if ws != nil {
			ws.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("http shutdown", "err", err)
		}
	}()

	logger.Info("listening",
		"policy", rt.Policy(), "backends", len(bks), "n", rt.N(), "per_backend", n,
		"addr", *addr, "wire_addr", *wireAddr, "debug_addr", *debugAddr)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err, 1)
	}
	<-done
	logger.Info("drained, bye")
}

// serveDebug exposes net/http/pprof on its own mux/listener so profile
// endpoints never ride the public API surface. The watchdog override
// hook (a test/CI instrument) rides the operator-only listener too.
func serveDebug(logger *slog.Logger, addr string, mon *watch.Monitor) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("POST /debug/watch/override", watch.OverrideHandler(mon))
	logger.Info("debug server listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug server exited", "err", err)
	}
}
