// Command bbsim runs one balls-into-bins experiment configuration and
// prints replicate-averaged metrics.
//
// Usage:
//
//	bbsim -spec adaptive -n 10000 -m 1000000 -reps 20 -seed 1
//	bbsim -spec greedy -d 2 -n 10000 -m 10000
//	bbsim -spec memory -d 1 -k 1 -n 10000 -m 10000
//
// -proto is accepted as an alias of -spec.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	ballsbins "repro"
	"repro/internal/cli"
	"repro/internal/table"
)

func main() {
	sf := cli.RegisterSpec(flag.CommandLine)
	var (
		n    = flag.Int("n", 10000, "number of bins")
		m    = flag.Int64("m", 100000, "number of balls")
		reps = flag.Int("reps", 10, "replicates to average over")
	)
	flag.Parse()

	spec, err := sf.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbsim:", err)
		os.Exit(2)
	}
	eng, err := sf.Engine()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbsim:", err)
		os.Exit(2)
	}

	sum, err := ballsbins.Replicates(context.Background(), spec, *n, *m, *reps,
		ballsbins.WithSeed(sf.Seed), ballsbins.WithEngine(eng))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbsim:", err)
		os.Exit(1)
	}

	fmt.Printf("protocol=%s n=%s m=%s reps=%d seed=%d engine=%s\n",
		sum.Protocol, cli.FmtCount(int64(*n)), cli.FmtCount(*m), *reps, sf.Seed, eng)
	fmt.Printf("max-load guarantee (threshold/adaptive): %d\n\n",
		ballsbins.MaxLoadGuarantee(*n, *m))

	tb := table.New("metric", "mean ± 95% CI", "min", "max")
	tb.AddRow("allocation time", cli.FmtStat(sum.Time),
		fmt.Sprintf("%.4g", sum.Time.Min), fmt.Sprintf("%.4g", sum.Time.Max))
	tb.AddRow("time per ball", cli.FmtStat(sum.TimePerBall),
		fmt.Sprintf("%.4g", sum.TimePerBall.Min), fmt.Sprintf("%.4g", sum.TimePerBall.Max))
	tb.AddRow("max load", cli.FmtStat(sum.MaxLoad),
		fmt.Sprintf("%.4g", sum.MaxLoad.Min), fmt.Sprintf("%.4g", sum.MaxLoad.Max))
	tb.AddRow("gap (max-min)", cli.FmtStat(sum.Gap),
		fmt.Sprintf("%.4g", sum.Gap.Min), fmt.Sprintf("%.4g", sum.Gap.Max))
	tb.AddRow("quadratic potential", cli.FmtStat(sum.Psi),
		fmt.Sprintf("%.4g", sum.Psi.Min), fmt.Sprintf("%.4g", sum.Psi.Max))
	tb.AddRow("exponential potential", cli.FmtStat(sum.Phi),
		fmt.Sprintf("%.4g", sum.Phi.Min), fmt.Sprintf("%.4g", sum.Phi.Max))
	fmt.Print(tb.Render())
}
