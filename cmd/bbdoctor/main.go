// Command bbdoctor is the offline postmortem analyzer for flight-
// recorder bundles (internal/diag): it decodes a bundle, renders the
// assembled cross-tier trace trees and the violation/gap timeline,
// and flags anomalies (bound proximity, queue-vs-apply skew,
// staleness spikes, WAL damage) — all from the bundle file alone, no
// live daemon needed.
//
// Usage:
//
//	bbdoctor -bundle diag/diag-serve-...-violation.bbdiag
//	bbdoctor -dir diag -once -format json   # newest bundle, CI gate
//	bbdoctor -dir diag                      # follow: analyze bundles as they land
//	bbdoctor -url http://127.0.0.1:8080     # live daemon, no bundle
//
// Exactly one of -bundle, -dir, -url selects the source. -dir without
// -once follows the directory, rendering each new bundle as it
// appears; with -once it analyzes the newest bundle and exits.
// -url synthesizes the same report from a live daemon's /v1/stats,
// /v1/events, /v1/timeseries and /v1/trace documents.
//
// Exit code: 0 when the report is clean, 1 when it holds an invariant
// violation or a critical anomaly (the CI gate), 2 on usage or I/O
// errors. -format json emits the machine-readable report instead of
// the terminal rendering.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"repro/internal/diag"
	"repro/internal/obs"
)

func main() {
	var (
		bundle = flag.String("bundle", "", "bundle file to analyze")
		dir    = flag.String("dir", "", "bundle directory (newest bundle; follows unless -once)")
		live   = flag.String("url", "", "live daemon base URL to analyze instead of a bundle")
		once   = flag.Bool("once", false, "with -dir: analyze the newest bundle and exit")
		format = flag.String("format", "text", "output format: text, json")
	)
	flag.Parse()

	if *format != "text" && *format != "json" {
		fatalf("unknown format %q (want text or json)", *format)
	}
	nsrc := 0
	for _, s := range []string{*bundle, *dir, *live} {
		if s != "" {
			nsrc++
		}
	}
	if nsrc != 1 {
		fatalf("exactly one of -bundle, -dir, -url is required")
	}

	switch {
	case *bundle != "":
		os.Exit(render(analyzePath(*bundle), *format))
	case *live != "":
		os.Exit(render(analyzeLive(*live), *format))
	case *once:
		path, err := diag.NewestBundle(*dir)
		if err != nil {
			fatalf("%v", err)
		}
		os.Exit(render(analyzePath(path), *format))
	default:
		follow(*dir, *format)
	}
}

// analyzePath reads and analyzes one bundle file.
func analyzePath(path string) *diag.Report {
	b, err := diag.ReadBundle(path)
	if err != nil {
		fatalf("%v", err)
	}
	return diag.Analyze(b)
}

// follow watches dir, rendering each new bundle as it lands — a tail
// -f for postmortems during an incident. It never exits on its own.
func follow(dir, format string) {
	seen := map[string]bool{}
	first := true
	for {
		if path, err := diag.NewestBundle(dir); err == nil && !seen[path] {
			seen[path] = true
			if !first {
				fmt.Println()
			}
			first = false
			render(analyzePath(path), format)
		}
		time.Sleep(time.Second)
	}
}

// analyzeLive synthesizes a bundle in memory from a live daemon's
// observability endpoints, then analyzes it exactly like a file — the
// one code path keeps the two modes honest with each other.
func analyzeLive(base string) *diag.Report {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" {
		fatalf("invalid -url %q", base)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) []byte {
		resp, err := client.Get(base + path)
		if err != nil {
			fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return data
	}

	b := &diag.Bundle{Path: base, Complete: true}
	add := func(name string, data []byte) {
		b.Sections = append(b.Sections, diag.Section{Name: name, Data: data})
	}

	var build obs.BuildInfo
	json.Unmarshal(get("/v1/version"), &build)
	meta, _ := json.Marshal(diag.Meta{
		Schema: diag.Schema, Trigger: "live", Reason: "live query of " + base,
		TimeUnixMs: time.Now().UnixMilli(), Build: build,
	})
	add("meta", meta)
	add("stats", get("/v1/stats"))
	add("events", get("/v1/events"))
	add("timeseries", get("/v1/timeseries"))

	var tr obs.TraceResponse
	json.Unmarshal(get("/v1/trace"), &tr)
	ts, _ := json.Marshal(diag.TraceSection{
		Sources: []string{tr.Hop}, Ops: tr.Ops, Assembled: obs.Assemble(tr.Ops),
	})
	add("trace", ts)

	return diag.Analyze(b)
}

// render writes the report in the chosen format and returns the exit
// code the report maps to.
func render(r *diag.Report, format string) int {
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(r)
	} else {
		diag.WriteText(os.Stdout, r)
	}
	return r.ExitCode()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bbdoctor: "+format+"\n", args...)
	os.Exit(2)
}
