// Command bbserved serves a balls-into-bins allocator over HTTP: the
// arrival-combining dispatch core of internal/serve fronting a
// ShardedAllocator, with live stats and Prometheus metrics.
//
// Usage:
//
//	bbserved -addr :8080 -spec adaptive -n 100000 -shards 8
//	bbserved -spec threshold -horizon 10000000 -n 100000
//
// API:
//
//	POST /v1/place[?count=k]  allocate 1 (default) or k balls
//	POST /v1/place?key=K      keyed placement: one ball on K's sticky
//	                          shard (-keyed-policy; bulk + key is a 400)
//	POST /v1/remove?bin=i[&key=K]  remove one ball from bin i (key
//	                          releases it from the keyed tier too)
//	GET  /v1/stats            lock-free monitoring view (+ keyed block)
//	GET  /v1/snapshot         lock-all consistent snapshot
//	GET  /healthz             200 ok, 503 once draining
//	GET  /metrics             Prometheus text format
//
// SIGINT/SIGTERM trigger a graceful drain: the listener stops taking
// new connections, in-flight requests finish against the draining
// dispatcher, and the process exits once both are done.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/keyed"
	"repro/internal/serve"
)

func main() {
	sf := cli.RegisterSpec(flag.CommandLine)
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		n           = flag.Int("n", 100000, "number of bins")
		shards      = flag.Int("shards", 8, "allocator shards (parallel dispatch lanes)")
		horizon     = flag.Int64("horizon", 0, "declared total balls (threshold family)")
		queueDepth  = flag.Int("queue-depth", serve.DefaultQueueDepth, "per-shard arrival queue depth")
		maxBatch    = flag.Int("max-batch", serve.DefaultMaxBatch, "max requests combined per lock acquisition")
		keyedPolicy = flag.String("keyed-policy", "adaptive", "keyed tier key->shard policy: "+strings.Join(keyed.Policies(), ", "))
		retries     = flag.Int("retries", 3, "keyed tier probe cap (boundedretry policy)")
		replicas    = flag.Int("replicas", keyed.DefaultReplicas, "hot-key replica set size (1 disables splitting)")
		hotShare    = flag.Float64("hot-share", keyed.DefaultHotShare, "request share promoting a key to replicas (>=1 disables)")
		maxKeys     = flag.Int("max-keys", keyed.DefaultMaxKeys, "keyed affinity table capacity (idle keys evicted beyond it)")
	)
	flag.Parse()

	spec, err := sf.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbserved:", err)
		os.Exit(2)
	}
	eng, err := sf.Engine()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbserved:", err)
		os.Exit(2)
	}
	kp, err := keyed.PolicyByName(*keyedPolicy, sf.D, *retries, *horizon)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbserved:", err)
		os.Exit(2)
	}

	d := serve.NewDispatcher(serve.Config{
		Spec:       spec,
		N:          *n,
		Shards:     *shards,
		Seed:       sf.Seed,
		Engine:     eng,
		Horizon:    *horizon,
		QueueDepth: *queueDepth,
		MaxBatch:   *maxBatch,
		Keyed: &keyed.Config{
			Policy:   kp,
			Replicas: *replicas,
			HotShare: *hotShare,
			MaxKeys:  *maxKeys,
		},
	})
	info := serve.Info{
		Protocol: d.Name(),
		N:        *n,
		Shards:   *shards,
		Engine:   eng.String(),
		Seed:     sf.Seed,
	}
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(d, info)}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		fmt.Fprintf(os.Stderr, "bbserved: %v, draining\n", sig)
		// Drain the dispatcher first, while the listener still
		// accepts: from this point /healthz answers 503 and place/
		// remove answer 503, so load balancers can observe the drain
		// window and stop routing before the listener disappears.
		// Everything already enqueued completes. Then stop the
		// listener, letting in-flight HTTP requests finish.
		d.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "bbserved: shutdown:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "bbserved: %s n=%d shards=%d engine=%s listening on %s\n",
		info.Protocol, *n, *shards, info.Engine, *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "bbserved:", err)
		os.Exit(1)
	}
	<-done
	fmt.Fprintln(os.Stderr, "bbserved: drained, bye")
}
