// Command bbserved serves a balls-into-bins allocator over HTTP: the
// arrival-combining dispatch core of internal/serve fronting a
// ShardedAllocator, with live stats and Prometheus metrics.
//
// Usage:
//
//	bbserved -addr :8080 -spec adaptive -n 100000 -shards 8
//	bbserved -spec threshold -horizon 10000000 -n 100000
//
// API:
//
//	POST /v1/place[?count=k]  allocate 1 (default) or k balls
//	POST /v1/place?key=K      keyed placement: one ball on K's sticky
//	                          shard (-keyed-policy; bulk + key is a 400)
//	POST /v1/remove?bin=i[&key=K]  remove one ball from bin i (key
//	                          releases it from the keyed tier too)
//	GET  /v1/stats            lock-free monitoring view (+ keyed block)
//	GET  /v1/events           invariant watchdog event journal
//	GET  /v1/timeseries       watchdog time series (?window=N)
//	GET  /v1/snapshot         lock-all consistent snapshot
//	GET  /healthz             200 ok, 503 once draining
//	GET  /metrics             Prometheus text format (+ bb_wire_* series)
//
// With -wire-addr the same operations are additionally served over the
// binary streaming wire protocol (internal/wire): persistent
// connections, CRC-guarded frames, pipelined out-of-order replies. The
// address is advertised in /v1/stats info.wire_addr so clients
// (bbload -transport wire, bbproxy) discover it from the HTTP probe.
//
// With -data-dir the keyed tier is durable: every keyed mutation is
// journaled to a CRC-checked write-ahead log with periodic compacting
// snapshots, and a restarted process replays to the exact pre-crash
// assignment before serving traffic (healthz answers 503 while the
// replay runs). -fsync picks the append durability policy and
// -snapshot-every the compaction cadence.
//
// SIGINT/SIGTERM trigger a graceful drain: the listener stops taking
// new connections, in-flight requests finish against the draining
// dispatcher (which writes a final snapshot when durable), and the
// process exits once both are done.
//
// Observability: -debug-addr serves net/http/pprof (plus the watchdog
// override hook POST /debug/watch/override used by the CI smoke test);
// -trace-slow and -trace-sample tune the request-trace recorder behind
// GET /v1/trace (GET /v1/trace/{id} assembles one trace id into a
// tree); -watch-every sets the invariant watchdog's cadence (0
// disables it) — the watchdog re-checks the paper's load bounds
// against the live system each tick, journals lifecycle events behind
// GET /v1/events, and keeps the time series behind GET /v1/timeseries
// (the surface cmd/bbtop renders); -log-level and -log-format control
// the structured (log/slog) output.
//
// With -diag-dir the flight recorder (internal/diag) is armed: an
// invariant violation, a WAL recovery that found torn bytes, a restart
// with a fault-injection crash point armed, or an operator SIGQUIT
// each snapshot a self-contained postmortem bundle (events, time
// series, traces, stats, profiles, build identity) into the directory,
// rate-limited and pruned to a bounded set. cmd/bbdoctor reads the
// bundles offline.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/diag"
	"repro/internal/keyed"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wal"
	"repro/internal/watch"
	"repro/internal/wire"
)

func main() {
	sf := cli.RegisterSpec(flag.CommandLine)
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		wireAddr    = flag.String("wire-addr", "", "binary wire-protocol listen address (empty = HTTP only)")
		debugAddr   = flag.String("debug-addr", "", "net/http/pprof listen address (empty = off)")
		n           = flag.Int("n", 100000, "number of bins")
		shards      = flag.Int("shards", 8, "allocator shards (parallel dispatch lanes)")
		horizon     = flag.Int64("horizon", 0, "declared total balls (threshold family)")
		queueDepth  = flag.Int("queue-depth", serve.DefaultQueueDepth, "per-shard arrival queue depth")
		maxBatch    = flag.Int("max-batch", serve.DefaultMaxBatch, "max requests combined per lock acquisition")
		keyedPolicy = flag.String("keyed-policy", "adaptive", "keyed tier key->shard policy: "+strings.Join(keyed.Policies(), ", "))
		retries     = flag.Int("retries", 3, "keyed tier probe cap (boundedretry policy)")
		replicas    = flag.Int("replicas", keyed.DefaultReplicas, "hot-key replica set size (1 disables splitting)")
		hotShare    = flag.Float64("hot-share", keyed.DefaultHotShare, "request share promoting a key to replicas (>=1 disables)")
		maxKeys     = flag.Int("max-keys", keyed.DefaultMaxKeys, "keyed affinity table capacity (idle keys evicted beyond it)")
		dataDir     = flag.String("data-dir", "", "durable keyed state directory (WAL + snapshots; empty = in-memory only)")
		snapEvery   = flag.Int("snapshot-every", keyed.DefaultSnapshotEvery, "journal records between compacting snapshots")
		fsync       = flag.String("fsync", wal.SyncInterval, "WAL fsync policy: always, interval, never")
		traceSlow   = flag.Duration("trace-slow", 0, "trace ops at or above this latency (0 = default 10ms)")
		traceSample = flag.Int("trace-sample", 0, "head-sample 1 in N ops into the trace ring (0 = default 1024)")
		watchEvery  = flag.Duration("watch-every", watch.DefaultCadence, "invariant watchdog cadence (0 disables the watchdog)")
		diagDir     = flag.String("diag-dir", "", "flight-recorder bundle directory (empty = postmortem capture off)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text, json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbserved:", err)
		os.Exit(2)
	}
	logger = logger.With("component", "bbserved")
	slog.SetDefault(logger)
	fatal := func(err error, code int) {
		logger.Error("fatal", "err", err)
		os.Exit(code)
	}

	spec, err := sf.Spec()
	if err != nil {
		fatal(err, 2)
	}
	eng, err := sf.Engine()
	if err != nil {
		fatal(err, 2)
	}
	kp, err := keyed.PolicyByName(*keyedPolicy, sf.D, *retries, *horizon)
	if err != nil {
		fatal(err, 2)
	}

	cfg := serve.Config{
		Spec:       spec,
		N:          *n,
		Shards:     *shards,
		Seed:       sf.Seed,
		Engine:     eng,
		Horizon:    *horizon,
		QueueDepth: *queueDepth,
		MaxBatch:   *maxBatch,
		Keyed: &keyed.Config{
			Policy:   kp,
			Replicas: *replicas,
			HotShare: *hotShare,
			MaxKeys:  *maxKeys,
		},
		Obs:   obs.Options{SlowThreshold: *traceSlow, SampleEvery: *traceSample},
		Watch: watch.Options{Cadence: *watchEvery, Disabled: *watchEvery <= 0},
	}
	if *dataDir != "" {
		cfg.KeyedStore = &keyed.StoreOptions{
			Dir:           *dataDir,
			SnapshotEvery: *snapEvery,
			Fsync:         *fsync,
		}
	}

	// Bring the listener up before recovery so healthz is observable
	// (503 "recovering") while the WAL replays; the real handler is
	// swapped in once the dispatcher is ready to serve.
	var handler atomic.Pointer[http.Handler]
	var warming http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "recovering", http.StatusServiceUnavailable)
	})
	handler.Store(&warming)
	srv := &http.Server{Addr: *addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	})}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	// Reserve the wire listener early too, but only start serving it
	// once the dispatcher is ready (queued dials wait in the backlog —
	// the wire protocol has no "recovering" page to show).
	var wireLn net.Listener
	if *wireAddr != "" {
		wireLn, err = net.Listen("tcp", *wireAddr)
		if err != nil {
			fatal(err, 1)
		}
	}

	d, rec, err := serve.OpenDispatcher(cfg)
	if err != nil {
		fatal(err, 1)
	}
	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr, d.Watch())
	}
	if rec != nil {
		logger.Info("recovered keyed state",
			"snapshot_keys", rec.SnapshotKeys, "journal_records", rec.ReplayedRecords,
			"replay_ms", rec.ReplayMs, "dir", *dataDir)
	}
	info := serve.Info{
		Protocol: d.Name(),
		N:        *n,
		Shards:   *shards,
		Engine:   eng.String(),
		Seed:     sf.Seed,
		WireAddr: *wireAddr,
	}
	var ws *wire.Server
	if wireLn != nil {
		wh := serve.NewDispatcherWire(d, info)
		ws = wire.NewServer(wh, wire.ServerOptions{Logger: logger})
		wh.BindServer(ws)
		go func() {
			if err := ws.Serve(wireLn); err != nil {
				logger.Error("wire server exited", "err", err)
			}
		}()
	}
	var real http.Handler = serve.NewHandlerWire(d, info, ws)
	handler.Store(&real)

	// Arm the flight recorder last: its stats closure captures the
	// fully-assembled surface (dispatcher + wire server).
	diagRec, err := diag.New(diag.Options{
		Dir: *diagDir, Hop: "serve", Build: obs.Build(wire.Version), Logger: logger,
	}, diag.Sources{
		Monitor: d.Watch(),
		Obs:     d.Obs(),
		StatsJSON: func(ctx context.Context) ([]byte, error) {
			return json.Marshal(serve.BuildStatsResponse(d, info, ws))
		},
		Durability: func() any {
			if ds := d.Durability(); ds != nil {
				return ds
			}
			return nil
		},
	})
	if err != nil {
		fatal(err, 1)
	}
	if diagRec != nil {
		d.BindDiag(diagRec)
		var torn int64
		if ds := d.Durability(); ds != nil {
			torn = ds.RecoveryTornBytes
		}
		diagRec.CheckStartup(context.Background(), torn)
		// SIGQUIT is the operator's "dump and keep running" trigger —
		// deliberately separate from the SIGINT/SIGTERM drain path.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				path, err := diagRec.Dump(ctx, diag.TriggerSignal, "operator SIGQUIT")
				cancel()
				if err != nil {
					logger.Error("diag: SIGQUIT dump failed", "err", err)
				} else {
					logger.Info("diag: SIGQUIT bundle written", "path", path)
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		logger.Info("signal received, draining", "signal", sig.String())
		// Drain the dispatcher first, while the listener still
		// accepts: from this point /healthz answers 503 and place/
		// remove answer 503, so load balancers can observe the drain
		// window and stop routing before the listener disappears.
		// Everything already enqueued completes. Then stop the
		// listener, letting in-flight HTTP requests finish.
		d.Close()
		if ws != nil {
			// Wire conns see CodeDraining on new work during the drain
			// window above; now drop them and the wire listener.
			ws.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("http shutdown", "err", err)
		}
	}()

	logger.Info("listening",
		"protocol", info.Protocol, "n", *n, "shards", *shards, "engine", info.Engine,
		"addr", *addr, "wire_addr", *wireAddr, "debug_addr", *debugAddr)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err, 1)
	}
	<-done
	logger.Info("drained, bye")
}

// serveDebug exposes net/http/pprof on its own mux/listener so profile
// endpoints never ride the public API surface. The watchdog override
// hook lives here too: it is a test/CI instrument (inject a bogus
// bound, observe the violation machinery end to end), so it belongs on
// the operator-only listener.
func serveDebug(logger *slog.Logger, addr string, mon *watch.Monitor) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("POST /debug/watch/override", watch.OverrideHandler(mon))
	logger.Info("debug server listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug server exited", "err", err)
	}
}
