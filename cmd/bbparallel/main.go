// Command bbparallel runs the round-synchronous parallel allocation
// protocols (Lenzen–Wattenhofer, Adler-style collision, heavy-load)
// and prints rounds, messages and maximum load — the figures of merit
// of the parallel balls-into-bins literature.
//
// Usage:
//
//	bbparallel -proto lw -n 65536
//	bbparallel -proto adler -n 16384 -d 3
//	bbparallel -proto heavy -n 4096 -m 262144
//	bbparallel -proto lw -scaling        # sweep n and show growth
package main

import (
	"flag"
	"fmt"
	"os"

	ballsbins "repro"
	"repro/internal/cli"
	"repro/internal/table"
)

func main() {
	var (
		proto   = flag.String("proto", "lw", "protocol: lw, adler, heavy")
		n       = flag.Int("n", 65536, "number of bins")
		m       = flag.Int64("m", 0, "number of balls (heavy only; default 16n)")
		d       = flag.Int("d", 2, "fixed choices per ball (adler only)")
		seed    = flag.Uint64("seed", 1, "random seed")
		scaling = flag.Bool("scaling", false, "sweep n from 2^10 to 2^16")
	)
	flag.Parse()

	run := func(n int) (ballsbins.ParallelResult, error) {
		switch *proto {
		case "lw":
			return ballsbins.LenzenWattenhofer(n, *seed)
		case "adler":
			return ballsbins.AdlerCollision(n, *d, *seed)
		case "heavy":
			mm := *m
			if mm == 0 {
				mm = int64(16 * n)
			}
			return ballsbins.HeavyParallel(n, mm, *seed)
		default:
			return ballsbins.ParallelResult{},
				fmt.Errorf("unknown protocol %q (want lw, adler, heavy)", *proto)
		}
	}

	tb := table.New("n", "rounds", "messages", "messages/n", "max load", "placed")
	add := func(n int) error {
		res, err := run(n)
		if err != nil {
			return err
		}
		tb.AddRow(cli.FmtCount(int64(n)), fmt.Sprint(res.Rounds),
			cli.FmtCount(res.Messages),
			fmt.Sprintf("%.2f", float64(res.Messages)/float64(n)),
			fmt.Sprint(res.MaxLoad), cli.FmtCount(res.Placed))
		return nil
	}

	var err error
	if *scaling {
		for logN := 10; logN <= 16; logN += 2 {
			if err = add(1 << logN); err != nil {
				break
			}
		}
	} else {
		err = add(*n)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbparallel:", err)
		os.Exit(1)
	}
	fmt.Printf("protocol=%s seed=%d\n\n", *proto, *seed)
	fmt.Print(tb.Render())
}
