// Command bbtable regenerates the paper's Table 1: allocation time and
// maximum load for every protocol, measured against the closed-form
// predictions, at one or more load levels ϕ = m/n.
//
// Usage:
//
//	bbtable -n 10000 -phis 1,10,100 -reps 5 -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	ballsbins "repro"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/table"
)

func main() {
	cf := cli.RegisterCommon(flag.CommandLine)
	var (
		n    = flag.Int("n", 10000, "number of bins")
		phis = flag.String("phis", "1,10,100", "comma-separated m/n load levels")
		reps = flag.Int("reps", 5, "replicates per configuration")
	)
	flag.Parse()
	eng, err := cf.Engine()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbtable:", err)
		os.Exit(2)
	}

	var levels []int64
	for _, tok := range strings.Split(*phis, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bbtable: bad phi %q\n", tok)
			os.Exit(2)
		}
		levels = append(levels, v)
	}

	ctx := context.Background()
	for _, phi := range levels {
		m := phi * int64(*n)
		fmt.Printf("== Table 1 at n=%s, m=%s (phi=%d), %d reps ==\n\n",
			cli.FmtCount(int64(*n)), cli.FmtCount(m), phi, *reps)

		tb := table.New("algorithm", "alloc time (measured)", "time (predicted)",
			"max load (measured)", "max load (predicted)")

		rows := []struct {
			spec        ballsbins.Spec
			predTime    string
			predMaxLoad string
		}{
			{ballsbins.Greedy(2), fmt.Sprintf("%d (=2m)", 2*m),
				fmt.Sprintf("%.2f", core.PredictGreedyMaxLoad(*n, m, 2))},
			{ballsbins.Greedy(3), fmt.Sprintf("%d (=3m)", 3*m),
				fmt.Sprintf("%.2f", core.PredictGreedyMaxLoad(*n, m, 3))},
			{ballsbins.Left(2), fmt.Sprintf("%d (=2m)", 2*m),
				fmt.Sprintf("%.2f", core.PredictLeftMaxLoad(*n, m, 2))},
			{ballsbins.Memory(1, 1), fmt.Sprintf("%d (=m)", m),
				fmt.Sprintf("%.2f", float64(m)/float64(*n)+core.PredictMemoryMaxLoad(*n))},
			{ballsbins.Threshold(),
				fmt.Sprintf("%.0f (=m+m^3/4 n^1/4)", core.PredictThresholdTime(*n, m)),
				fmt.Sprintf("%d (=ceil(m/n)+1)", core.PredictMaxLoadBound(*n, m))},
			{ballsbins.Adaptive(), "O(m)",
				fmt.Sprintf("%d (=ceil(m/n)+1)", core.PredictMaxLoadBound(*n, m))},
			{ballsbins.AdaptiveNoSlack(),
				fmt.Sprintf("%.0f (=m ln n)", core.PredictAdaptiveNoSlackTime(*n, m)),
				fmt.Sprintf("%d", core.PredictMaxLoadBound(*n, m))},
		}
		for _, row := range rows {
			sum, err := ballsbins.Replicates(ctx, row.spec, *n, m, *reps,
				ballsbins.WithSeed(cf.Seed), ballsbins.WithEngine(eng))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bbtable:", err)
				os.Exit(1)
			}
			tb.AddRow(sum.Protocol, cli.FmtStat(sum.Time), row.predTime,
				cli.FmtStat(sum.MaxLoad), row.predMaxLoad)
		}

		// Self-balancing baseline [6]: reallocations instead of samples.
		bal := ballsbins.SelfBalance(*n, m, cf.Seed)
		tb.AddRow("selfbalance[6]",
			fmt.Sprintf("%d samples + %d moves", bal.Samples, bal.Moves),
			"O(m)+n^O(1) moves",
			fmt.Sprintf("%d", bal.MaxLoad),
			fmt.Sprintf("%d (=ceil(m/n))", (m+int64(*n)-1)/int64(*n)))

		fmt.Print(tb.Render())
		fmt.Println()
	}
}
