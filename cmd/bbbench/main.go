// Command bbbench runs the engine comparison grid — naive rejection
// loop vs histogram-mode fast engine — and writes a JSON record
// (BENCH_<date>.json by default) so the performance trajectory can be
// compared across changes. The grid covers the Figure-3(a)-class
// workloads at n = 10⁵ … 10⁷ plus the low-acceptance fixed-threshold
// regime.
//
// Usage:
//
//	bbbench                  # full grid, writes BENCH_<today>.json
//	bbbench -quick           # n = 10^5 cases only
//	bbbench -out bench.json -reps 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	ballsbins "repro"
	"repro/internal/benchio"
	"repro/internal/cli"
)

type benchCase struct {
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	M        int64  `json:"m"`
	Engine   string `json:"engine"`
	Reps     int    `json:"reps"`
	// NsPerBall is wall-clock nanoseconds per placed ball, averaged
	// over the replicates.
	NsPerBall float64 `json:"ns_per_ball"`
	// ChoicesPerBall is the paper's allocation-time metric; it must
	// agree between the engines (same distribution).
	ChoicesPerBall float64 `json:"choices_per_ball"`
	MaxLoad        int     `json:"max_load"`
}

type speedup struct {
	Protocol string  `json:"protocol"`
	N        int     `json:"n"`
	M        int64   `json:"m"`
	NaiveNs  float64 `json:"naive_ns_per_ball"`
	FastNs   float64 `json:"fast_ns_per_ball"`
	Speedup  float64 `json:"speedup"`
}

// allocatorCase records one steady-state Allocator workload: Mode
// "place" is pure arrivals on a warm allocator, "churn" is one
// place+remove cycle per op (constant live load), matching
// BenchmarkAllocatorPlace / BenchmarkAllocatorChurn.
type allocatorCase struct {
	Protocol string  `json:"protocol"`
	N        int     `json:"n"`
	Mode     string  `json:"mode"`
	Ops      int64   `json:"ops"`
	NsPerOp  float64 `json:"ns_per_op"`
}

// report is the bbbench/v1 schema: the shared benchio envelope (the
// same header bbload's bbserve/v1 records carry, so the BENCH_*.json
// family stays machine-comparable) plus the engine-grid sections.
type report struct {
	benchio.Env
	Cases     []benchCase     `json:"cases"`
	Speedups  []speedup       `json:"speedups"`
	Allocator []allocatorCase `json:"allocator,omitempty"`
}

type workload struct {
	protocol string
	spec     ballsbins.Spec
	n        int
	m        int64
	reps     int
}

func grid(quick bool, reps int) []workload {
	var ws []workload
	add := func(protocol string, spec ballsbins.Spec, n int, m int64, r int) {
		ws = append(ws, workload{protocol, spec, n, m, r})
	}
	// Figure-3(a)-class: adaptive and threshold at m = 100n.
	add("adaptive", ballsbins.Adaptive(), 100000, 10000000, reps)
	add("threshold", ballsbins.Threshold(), 100000, 10000000, reps)
	// Low-acceptance regime: fixed threshold exactly at capacity.
	add("fixed[<8]", ballsbins.FixedThreshold(8), 100000, 800000, reps)
	if quick {
		return ws
	}
	// The scales the fast engine unlocks; single replicate keeps the
	// naive reference affordable.
	add("adaptive", ballsbins.Adaptive(), 1000000, 100000000, 1)
	add("threshold", ballsbins.Threshold(), 1000000, 100000000, 1)
	add("adaptive", ballsbins.Adaptive(), 10000000, 100000000, 1)
	add("threshold", ballsbins.Threshold(), 10000000, 100000000, 1)
	return ws
}

func run(w workload, eng ballsbins.Engine) benchCase {
	var elapsed time.Duration
	var samples float64
	maxLoad := 0
	for rep := 0; rep < w.reps; rep++ {
		start := time.Now()
		res := ballsbins.Run(w.spec, w.n, w.m,
			ballsbins.WithSeed(uint64(rep)+1), ballsbins.WithEngine(eng))
		elapsed += time.Since(start)
		samples += float64(res.Samples)
		maxLoad = res.MaxLoad
	}
	return benchCase{
		Protocol:       w.protocol,
		N:              w.n,
		M:              w.m,
		Engine:         eng.String(),
		Reps:           w.reps,
		NsPerBall:      float64(elapsed.Nanoseconds()) / float64(int64(w.reps)*w.m),
		ChoicesPerBall: samples / float64(int64(w.reps)*w.m),
		MaxLoad:        maxLoad,
	}
}

// runAllocator measures the steady-state Allocator workloads at a warm
// ~8 balls/bin: pure placement and place+remove churn.
func runAllocator(protocol string, spec ballsbins.Spec, n int, ops int64) []allocatorCase {
	warm := func(trackFifo bool) (*ballsbins.Allocator, []int) {
		a := ballsbins.New(spec, n, ballsbins.WithSeed(1))
		var fifo []int
		if trackFifo {
			fifo = make([]int, 0, 8*n+int(ops))
		}
		for i := 0; i < 8*n; i++ {
			bin, _ := a.Place()
			if trackFifo {
				fifo = append(fifo, bin)
			}
		}
		return a, fifo
	}

	a, _ := warm(false)
	start := time.Now()
	for i := int64(0); i < ops; i++ {
		a.Place()
	}
	placeNs := float64(time.Since(start).Nanoseconds()) / float64(ops)

	a, fifo := warm(true)
	head := 0
	start = time.Now()
	for i := int64(0); i < ops; i++ {
		bin, _ := a.Place()
		fifo = append(fifo, bin)
		a.Remove(fifo[head])
		head++
	}
	churnNs := float64(time.Since(start).Nanoseconds()) / float64(ops)

	fmt.Fprintf(os.Stderr, "bbbench: allocator %s n=%s ... place %.1f ns/op, churn %.1f ns/op\n",
		protocol, cli.FmtCount(int64(n)), placeNs, churnNs)
	return []allocatorCase{
		{Protocol: protocol, N: n, Mode: "place", Ops: ops, NsPerOp: placeNs},
		{Protocol: protocol, N: n, Mode: "churn", Ops: ops, NsPerOp: churnNs},
	}
}

func main() {
	var (
		out       = flag.String("out", "", "output path (default BENCH_<date>.json)")
		quick     = flag.Bool("quick", false, "n = 10^5 cases only")
		reps      = flag.Int("reps", 2, "replicates per small case")
		allocator = flag.Bool("allocator", true, "include steady-state Allocator place/churn cases")
	)
	flag.Parse()
	path := *out
	if path == "" {
		path = benchio.DefaultPath("")
	}

	rep := report{Env: benchio.NewEnv("bbbench/v1")}
	for _, w := range grid(*quick, *reps) {
		fmt.Fprintf(os.Stderr, "bbbench: %s n=%s m=%s ... ",
			w.protocol, cli.FmtCount(int64(w.n)), cli.FmtCount(w.m))
		naive := run(w, ballsbins.EngineNaive)
		fast := run(w, ballsbins.EngineFast)
		rep.Cases = append(rep.Cases, naive, fast)
		rep.Speedups = append(rep.Speedups, speedup{
			Protocol: w.protocol,
			N:        w.n,
			M:        w.m,
			NaiveNs:  naive.NsPerBall,
			FastNs:   fast.NsPerBall,
			Speedup:  naive.NsPerBall / fast.NsPerBall,
		})
		fmt.Fprintf(os.Stderr, "naive %.1f ns/ball, fast %.1f ns/ball (%.2fx)\n",
			naive.NsPerBall, fast.NsPerBall, naive.NsPerBall/fast.NsPerBall)
	}
	if *allocator {
		for _, tc := range []struct {
			name string
			spec ballsbins.Spec
		}{
			{"adaptive", ballsbins.Adaptive()},
			{"greedy2", ballsbins.Greedy(2)},
			{"single", ballsbins.SingleChoice()},
		} {
			rep.Allocator = append(rep.Allocator, runAllocator(tc.name, tc.spec, 100000, 2_000_000)...)
		}
	}

	if err := benchio.WriteJSON(path, rep); err != nil {
		fmt.Fprintln(os.Stderr, "bbbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
