// Command bbfigures regenerates the paper's Figure 3: average
// allocation time (3a) and average quadratic potential (3b) of the
// adaptive and threshold protocols as m grows, rendered as ASCII
// charts and optional CSV files.
//
// Usage:
//
//	bbfigures -fig both -n 10000 -mmin 200000 -mmax 1000000 -points 9 -reps 20
//	bbfigures -fig 3a -csv fig3a.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	ballsbins "repro"
	"repro/internal/cli"
	"repro/internal/table"
)

type sweepResult struct {
	ms       []int64
	adaptive []ballsbins.Summary
	thresh   []ballsbins.Summary
}

func main() {
	cf := cli.RegisterCommon(flag.CommandLine)
	var (
		fig    = flag.String("fig", "both", "which figure: 3a, 3b, or both")
		n      = flag.Int("n", 10000, "number of bins")
		mmin   = flag.Int64("mmin", 200000, "smallest m")
		mmax   = flag.Int64("mmax", 1000000, "largest m")
		points = flag.Int("points", 9, "sweep points between mmin and mmax")
		reps   = flag.Int("reps", 20, "replicates per point (paper: 100)")
		csvOut = flag.String("csv", "", "optional CSV output path")
	)
	flag.Parse()
	if *fig != "3a" && *fig != "3b" && *fig != "both" {
		fmt.Fprintln(os.Stderr, "bbfigures: -fig must be 3a, 3b or both")
		os.Exit(2)
	}
	if *points < 2 || *mmin < 1 || *mmax <= *mmin {
		fmt.Fprintln(os.Stderr, "bbfigures: need points >= 2 and mmax > mmin >= 1")
		os.Exit(2)
	}
	eng, err := cf.Engine()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbfigures:", err)
		os.Exit(2)
	}

	res := sweep(*n, *mmin, *mmax, *points, *reps, cf.Seed, eng)

	if *fig == "3a" || *fig == "both" {
		renderFig3a(res, *n, *reps)
	}
	if *fig == "3b" || *fig == "both" {
		renderFig3b(res, *n, *reps)
	}
	if *csvOut != "" {
		if err := writeCSV(*csvOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "bbfigures:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvOut)
	}
}

func sweep(n int, mmin, mmax int64, points, reps int, seed uint64, eng ballsbins.Engine) sweepResult {
	ctx := context.Background()
	var res sweepResult
	step := (mmax - mmin) / int64(points-1)
	for i := 0; i < points; i++ {
		m := mmin + int64(i)*step
		if i == points-1 {
			m = mmax
		}
		res.ms = append(res.ms, m)
		a, err := ballsbins.Replicates(ctx, ballsbins.Adaptive(), n, m, reps,
			ballsbins.WithSeed(seed), ballsbins.WithEngine(eng))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbfigures:", err)
			os.Exit(1)
		}
		t, err := ballsbins.Replicates(ctx, ballsbins.Threshold(), n, m, reps,
			ballsbins.WithSeed(seed), ballsbins.WithEngine(eng))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbfigures:", err)
			os.Exit(1)
		}
		res.adaptive = append(res.adaptive, a)
		res.thresh = append(res.thresh, t)
		fmt.Fprintf(os.Stderr, "  m=%s done\n", cli.FmtCount(m))
	}
	return res
}

func seriesOf(res sweepResult, pick func(ballsbins.Summary) float64) (xs, ya, yt []float64) {
	for i := range res.ms {
		xs = append(xs, float64(res.ms[i]))
		ya = append(ya, pick(res.adaptive[i]))
		yt = append(yt, pick(res.thresh[i]))
	}
	return xs, ya, yt
}

func renderFig3a(res sweepResult, n, reps int) {
	xs, ya, yt := seriesOf(res, func(s ballsbins.Summary) float64 { return s.Time.Mean })
	var c table.Chart
	c.Title = fmt.Sprintf("Figure 3(a): average allocation time, n=%d, %d reps", n, reps)
	c.XLabel = "m"
	c.YLabel = "avg samples"
	c.Add(table.Series{Name: "ADAPTIVE", X: xs, Y: ya, Marker: 'A'})
	c.Add(table.Series{Name: "THRESHOLD", X: xs, Y: yt, Marker: 'T'})
	fmt.Print(c.Render())

	tb := table.New("m", "adaptive time", "adaptive time/m", "threshold time", "threshold time/m")
	for i, m := range res.ms {
		tb.AddRow(cli.FmtCount(m),
			fmt.Sprintf("%.0f", ya[i]), fmt.Sprintf("%.4f", ya[i]/float64(m)),
			fmt.Sprintf("%.0f", yt[i]), fmt.Sprintf("%.4f", yt[i]/float64(m)))
	}
	fmt.Print(tb.Render())
	fmt.Println()
}

func renderFig3b(res sweepResult, n, reps int) {
	xs, ya, yt := seriesOf(res, func(s ballsbins.Summary) float64 { return s.Psi.Mean })
	var c table.Chart
	c.Title = fmt.Sprintf("Figure 3(b): average quadratic potential, n=%d, %d reps", n, reps)
	c.XLabel = "m"
	c.YLabel = "avg Psi"
	c.Add(table.Series{Name: "ADAPTIVE", X: xs, Y: ya, Marker: 'A'})
	c.Add(table.Series{Name: "THRESHOLD", X: xs, Y: yt, Marker: 'T'})
	fmt.Print(c.Render())

	tb := table.New("m", "adaptive Psi", "threshold Psi", "ratio")
	for i, m := range res.ms {
		tb.AddRow(cli.FmtCount(m), fmt.Sprintf("%.1f", ya[i]),
			fmt.Sprintf("%.1f", yt[i]), fmt.Sprintf("%.1fx", yt[i]/ya[i]))
	}
	fmt.Print(tb.Render())
	fmt.Println()
}

func writeCSV(path string, res sweepResult) error {
	tb := table.New("m",
		"adaptive_time", "adaptive_time_ci95", "threshold_time", "threshold_time_ci95",
		"adaptive_psi", "threshold_psi", "adaptive_maxload", "threshold_maxload")
	for i, m := range res.ms {
		a, t := res.adaptive[i], res.thresh[i]
		tb.AddRow(fmt.Sprint(m),
			fmt.Sprintf("%.1f", a.Time.Mean), fmt.Sprintf("%.1f", a.Time.CI95),
			fmt.Sprintf("%.1f", t.Time.Mean), fmt.Sprintf("%.1f", t.Time.CI95),
			fmt.Sprintf("%.2f", a.Psi.Mean), fmt.Sprintf("%.2f", t.Psi.Mean),
			fmt.Sprintf("%.2f", a.MaxLoad.Mean), fmt.Sprintf("%.2f", t.MaxLoad.Mean))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.CSV(f)
}
