// Command bbqueue runs the discrete-event dispatching simulation (the
// supermarket model) and prints sojourn-time statistics per dispatch
// policy across a sweep of offered loads.
//
// Usage:
//
//	bbqueue -n 64 -rhos 0.7,0.9,0.95 -jobs 150000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	ballsbins "repro"
	"repro/internal/queueing"
	"repro/internal/table"
)

func main() {
	var (
		n    = flag.Int("n", 64, "number of servers")
		rhos = flag.String("rhos", "0.7,0.9,0.95", "comma-separated offered loads (0,1)")
		jobs = flag.Int64("jobs", 150000, "jobs to complete per run")
		mu   = flag.Float64("mu", 1, "per-server service rate")
		seed = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var loads []float64
	for _, tok := range strings.Split(*rhos, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil || v <= 0 || v >= 1 {
			fmt.Fprintf(os.Stderr, "bbqueue: bad rho %q (need 0 < rho < 1)\n", tok)
			os.Exit(2)
		}
		loads = append(loads, v)
	}

	policies := []queueing.Policy{
		ballsbins.PickSingle, ballsbins.PickGreedy2, ballsbins.PickAdaptive,
	}
	for _, rho := range loads {
		fmt.Printf("== rho = %.2f (n=%d, mu=%g, %d jobs) ==\n", rho, *n, *mu, *jobs)
		tb := table.New("policy", "probes/job", "mean sojourn", "p50", "p99", "max queue")
		for _, p := range policies {
			res := ballsbins.RunQueue(ballsbins.QueueConfig{
				N:           *n,
				ArrivalRate: rho * float64(*n) * *mu,
				ServiceRate: *mu,
				Jobs:        *jobs,
				Policy:      p,
				Seed:        *seed,
			})
			tb.AddRow(p.String(),
				fmt.Sprintf("%.3f", res.ProbesPerJob),
				fmt.Sprintf("%.2f", res.MeanSojourn),
				fmt.Sprintf("%.2f", res.P50Sojourn),
				fmt.Sprintf("%.2f", res.P99Sojourn),
				fmt.Sprint(res.MaxQueue))
		}
		fmt.Print(tb.Render())
		fmt.Println()
	}
}
