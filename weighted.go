package ballsbins

import (
	"repro/internal/batched"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/weighted"
)

// WeightSampler draws ball weights for RunWeighted. Construct with
// ConstWeights, ExpWeights, UniformWeights or ParetoWeights.
type WeightSampler = weighted.Sampler

// ConstWeights yields the constant weight w (> 0).
func ConstWeights(w float64) WeightSampler { return weighted.ConstWeights(w) }

// ExpWeights yields exponential weights with the given mean (> 0).
func ExpWeights(mean float64) WeightSampler { return weighted.ExpWeights(mean) }

// UniformWeights yields weights uniform on [lo, hi], 0 < lo <= hi.
func UniformWeights(lo, hi float64) WeightSampler { return weighted.UniformWeights(lo, hi) }

// ParetoWeights yields bounded-Pareto (heavy-tailed) weights with
// shape alpha on [lo, hi].
func ParetoWeights(alpha, lo, hi float64) WeightSampler {
	return weighted.ParetoWeights(alpha, lo, hi)
}

// WeightedSpec selects a weighted allocation protocol.
type WeightedSpec struct {
	factory func() weighted.Protocol
}

// Name returns the protocol identifier.
func (s WeightedSpec) Name() string {
	if s.factory == nil {
		panic("ballsbins: zero WeightedSpec; use a constructor")
	}
	return s.factory().Name()
}

// newWeightedSpec wraps a factory in a WeightedSpec, invoking it once
// eagerly so that invalid parameters panic at construction time (in
// the constructor the user called) rather than at first use inside a
// worker — the exact mirror of newSpec for the unweighted protocols.
func newWeightedSpec(f func() weighted.Protocol) WeightedSpec {
	f()
	return WeightedSpec{factory: f}
}

// WeightedAdaptive returns the weighted generalization of the paper's
// adaptive protocol: accept bin j iff load(j) < Wᵢ/n + wmax, where Wᵢ
// is the weight placed so far.
func WeightedAdaptive() WeightedSpec {
	return newWeightedSpec(func() weighted.Protocol { return weighted.NewAdaptive() })
}

// WeightedThreshold returns the weighted Czumaj–Stemann rule:
// accept bin j iff load(j) < W/n + wmax, with the final total weight W
// known up front.
func WeightedThreshold() WeightedSpec {
	return newWeightedSpec(func() weighted.Protocol { return weighted.NewThreshold() })
}

// WeightedGreedy returns weighted greedy[d]. It panics if d < 1.
func WeightedGreedy(d int) WeightedSpec {
	return newWeightedSpec(func() weighted.Protocol { return weighted.NewGreedy(d) })
}

// WeightedSingleChoice returns the weighted one-random-bin process.
func WeightedSingleChoice() WeightedSpec {
	return newWeightedSpec(func() weighted.Protocol { return weighted.NewSingleChoice() })
}

// WeightedResult summarizes one weighted allocation run.
type WeightedResult struct {
	// Samples is the allocation time (random bin choices).
	Samples        int64
	SamplesPerBall float64
	// TotalWeight and MaxWeight describe the drawn weight sequence.
	TotalWeight, MaxWeight float64
	// MaxLoad, MinLoad, Gap and Psi describe the final weighted loads.
	MaxLoad, MinLoad, Gap float64
	Psi                   float64
}

// RunWeighted draws m ball weights from the sampler and places them
// into n bins with the chosen protocol. The weight stream and the
// placement stream derive independently from the seed, so different
// protocols see identical weight sequences under the same seed.
func RunWeighted(s WeightedSpec, n int, m int64, ws WeightSampler, opts ...Option) WeightedResult {
	if s.factory == nil {
		panic("ballsbins: zero WeightedSpec; use a constructor")
	}
	if ws == nil {
		panic("ballsbins: RunWeighted with nil sampler")
	}
	o := buildOptions(opts)
	base := rng.New(o.seed)
	weightsRand := base.Stream(1)
	placeRand := base.Stream(2)
	weights := weighted.GenWeights(m, ws, weightsRand)
	out := weighted.Run(s.factory(), n, weights, placeRand)
	res := WeightedResult{
		Samples:     out.Samples,
		TotalWeight: out.TotalWeight,
		MaxWeight:   out.MaxWeight,
		MaxLoad:     out.Vector.MaxLoad(),
		MinLoad:     out.Vector.MinLoad(),
		Gap:         out.Vector.Gap(),
		Psi:         out.Vector.QuadraticPotential(),
	}
	if m > 0 {
		res.SamplesPerBall = float64(out.Samples) / float64(m)
	}
	return res
}

// BatchedGreedy returns the b-batched greedy[d] protocol as a Spec:
// every ball picks the least loaded of d bins according to the load
// vector as of its batch's start (stale within a batch). batch = 1 is
// exactly Greedy(d). Being a Spec, it runs everywhere the sequential
// protocols do — Run, Replicates, and the incremental Allocator. It
// panics if batch < 1 or d < 1.
func BatchedGreedy(batch int64, d int) Spec {
	return newSpec(func() protocol.Protocol { return batched.NewGreedy(batch, d) })
}

// BatchedAdaptive returns the b-batched adaptive protocol as a Spec:
// the paper's acceptance rule with loads and ball counter frozen at
// each batch start. batch must be at most n at run time; batch = 1 is
// exactly Adaptive(). It panics if batch < 1.
func BatchedAdaptive(batch int64) Spec {
	return newSpec(func() protocol.Protocol { return batched.NewAdaptive(batch) })
}

// BatchedResult summarizes a batched-arrival run (see RunBatchedGreedy
// and RunBatchedAdaptive).
type BatchedResult struct {
	Samples int64
	Batches int
	MaxLoad int
	Gap     int
	Psi     float64
}

// RunBatchedGreedy places m balls in batches of size batch; every ball
// picks the least loaded of d bins according to the load vector as of
// the batch start (stale within a batch). batch = 1 is exactly
// Greedy(d).
func RunBatchedGreedy(n int, m, batch int64, d int, opts ...Option) BatchedResult {
	o := buildOptions(opts)
	out := batched.RunGreedy(n, m, batch, d, rng.New(o.seed))
	return BatchedResult{
		Samples: out.Samples,
		Batches: out.Batches,
		MaxLoad: out.Vector.MaxLoad(),
		Gap:     out.Vector.Gap(),
		Psi:     out.Vector.QuadraticPotential(),
	}
}

// RunBatchedAdaptive places m balls in batches of size batch with the
// adaptive acceptance rule frozen at each batch start. batch must be
// at most n; batch = 1 is exactly Adaptive().
func RunBatchedAdaptive(n int, m, batch int64, opts ...Option) BatchedResult {
	o := buildOptions(opts)
	out := batched.RunAdaptive(n, m, batch, rng.New(o.seed))
	return BatchedResult{
		Samples: out.Samples,
		Batches: out.Batches,
		MaxLoad: out.Vector.MaxLoad(),
		Gap:     out.Vector.Gap(),
		Psi:     out.Vector.QuadraticPotential(),
	}
}
