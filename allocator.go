package ballsbins

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Allocator is a long-lived, stateful allocator: the online
// counterpart of Run. Where Run places a fixed m balls and returns, an
// Allocator accepts arrivals one at a time (Place), in bulk
// (PlaceBatch), and departures (Remove), exposing the live load state
// after every operation — the setting where the paper's adaptive rule
// (accept load < i/n + 1 with i the live ball count) shines, since the
// total number of balls need not be known in advance.
//
// Construct with New from any Spec. The batch entry points Run,
// Replicates, RunBatchedGreedy/Adaptive and the dynamic simulator all
// drive the same incremental core (internal/protocol.Session), so an
// Allocator stepped ball-by-ball reproduces Run's Result exactly under
// the same seed and engine — for both engines: the fast engine's
// per-ball bucket-index path consumes the random stream identically to
// its fused histogram batch path and selects the same load levels, so
// every Result field agrees value for value (verified exhaustively in
// allocator_test.go).
//
// Removal support: every protocol accepts Remove mechanically. The
// adaptive family (Adaptive, AdaptiveNoSlack, StaleAdaptive,
// LaggedAdaptive) re-reads the live ball count, so its acceptance
// bound tracks departures — the natural online reading of the paper's
// rule. Threshold, FixedThreshold and BoundedRetry keep their fixed
// bound (removals only make acceptance easier). Greedy, Left, Memory,
// SingleChoice and OnePlusBeta are oblivious to the count entirely.
//
// An Allocator is not safe for concurrent use; see ShardedAllocator.
type Allocator struct {
	spec Spec
	sess *protocol.Session
	n    int
}

// New returns an Allocator for n bins using the given protocol spec.
// Options: WithSeed, WithEngine, and WithHorizon (required for specs
// whose acceptance rule depends on the total ball count — Threshold
// and BoundedRetry). It panics if n <= 0, s is the zero Spec, a
// required horizon is missing, or WithSnapshots is passed.
func New(s Spec, n int, opts ...Option) *Allocator {
	s.mustBeValid()
	if n <= 0 {
		panic("ballsbins: New with n <= 0")
	}
	o := buildOptions(opts)
	if o.snapFn != nil {
		panic("ballsbins: WithSnapshots is a Run option; poll Allocator.Snapshot instead")
	}
	p := s.factory()
	if _, ok := p.(protocol.HorizonRequirer); ok && o.horizon == 0 {
		panic(fmt.Sprintf(
			"ballsbins: %s needs the total ball count; construct with WithHorizon(m)",
			p.Name()))
	}
	return &Allocator{
		spec: s,
		sess: protocol.NewSession(p, n, o.horizon, rng.New(o.seed), o.engine),
		n:    n,
	}
}

// Name returns the protocol's identifier.
func (a *Allocator) Name() string { return a.sess.Name() }

// N returns the number of bins.
func (a *Allocator) N() int { return a.n }

// Balls returns the number of balls currently in the system.
func (a *Allocator) Balls() int64 { return a.sess.Balls() }

// Placed returns the cumulative number of placements (not reduced by
// Remove).
func (a *Allocator) Placed() int64 { return a.sess.Placed() }

// Removed returns the cumulative number of departures.
func (a *Allocator) Removed() int64 { return a.sess.Removed() }

// Samples returns the cumulative allocation time: the total number of
// random bin choices consumed so far.
func (a *Allocator) Samples() int64 { return a.sess.Samples() }

// Place allocates one ball and returns the chosen bin together with
// the number of random bin choices it consumed.
func (a *Allocator) Place() (bin int, samples int64) { return a.sess.Step() }

// PlaceBatch allocates k balls without reporting their individual bins
// and returns the number of random bin choices consumed. Under the
// fast engine, a fresh Allocator for a histogram-capable spec runs
// this through the fused O(1)-per-ball histogram hot loop; once bin
// identities have been observed (Place, Remove, Loads, Load) it
// continues on the per-ball bucket-index fast path. k <= 0 is a no-op.
func (a *Allocator) PlaceBatch(k int64) int64 { return a.sess.StepBatch(k) }

// Remove takes one ball out of bin i — a departure. It panics if bin i
// is empty.
func (a *Allocator) Remove(bin int) { a.sess.Remove(bin) }

// Load returns the current load of bin i.
func (a *Allocator) Load(bin int) int { return a.sess.Vector().Load(bin) }

// Loads returns a copy of the current per-bin loads.
func (a *Allocator) Loads() []int { return a.sess.Vector().Loads() }

// MaxLoad returns the current maximum load.
func (a *Allocator) MaxLoad() int { return a.sess.MaxLoad() }

// MinLoad returns the current minimum load.
func (a *Allocator) MinLoad() int { return a.sess.MinLoad() }

// Gap returns MaxLoad − MinLoad, the smoothness measure.
func (a *Allocator) Gap() int { return a.sess.Gap() }

// Psi returns the quadratic potential Ψ of the current load vector.
func (a *Allocator) Psi() float64 { return a.sess.Psi() }

// SumSquares returns Σℓᵢ², the raw second moment of the load vector.
// Together with Balls it lets several allocators' quadratic potentials
// be combined exactly: Ψ_total = Σ SumSquares − t²/n over the union.
func (a *Allocator) SumSquares() int64 { return a.sess.SumSquares() }

// LevelCount returns the number of bins currently at load l — the load
// histogram read O(1) at a time, for stats pipelines that want the
// level distribution without copying all n loads.
func (a *Allocator) LevelCount(l int) int64 { return a.sess.LevelCount(l) }

// Phi returns the exponential potential Φ with the paper's ε = 1/200.
func (a *Allocator) Phi() float64 { return a.sess.Phi(loadvec.DefaultEpsilon) }

// Metrics summarizes the session so far as a Result. SamplesPerBall
// divides by the cumulative placements, so it remains the paper's
// allocation-time-per-ball under churn.
func (a *Allocator) Metrics() Result {
	res := Result{
		Samples: a.sess.Samples(),
		MaxLoad: a.sess.MaxLoad(),
		MinLoad: a.sess.MinLoad(),
		Gap:     a.sess.Gap(),
		Psi:     a.sess.Psi(),
		Phi:     a.Phi(),
	}
	if placed := a.sess.Placed(); placed > 0 {
		res.SamplesPerBall = float64(res.Samples) / float64(placed)
	}
	return res
}

// Snapshot returns the mid-run observation Run's WithSnapshots would
// deliver at this point: Ball is the cumulative number of placements.
func (a *Allocator) Snapshot() Snapshot {
	return Snapshot{
		Ball:    a.sess.Placed(),
		Samples: a.sess.Samples(),
		MaxLoad: a.sess.MaxLoad(),
		Gap:     a.sess.Gap(),
		Psi:     a.sess.Psi(),
	}
}
